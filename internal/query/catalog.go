// Package query implements the relational query engine that runs on
// the storage substrate: a SQL subset (SELECT-PROJECT-JOIN with
// aggregation and DML), a cost-based optimiser driven by catalog
// statistics, a Volcano executor over the operators package, and the
// Scenario 3 machinery — mid-query re-optimisation at safe points
// when the statistics the pre-optimiser trusted turn out wrong
// ("the statistics provided by the metadata are not quite accurate
// enough for the pre-optimisor to build the optimal plan").
package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
)

// ColumnType is a declared column type.
type ColumnType int

// Column types.
const (
	TInt ColumnType = iota
	TFloat
	TString
	TBool
)

func (t ColumnType) String() string {
	return [...]string{"INT", "FLOAT", "STRING", "BOOL"}[t]
}

// Column is one table column.
type Column struct {
	Name string
	Type ColumnType
}

// TableStats is what the optimiser believes about a table. It is
// updated only by Analyze — never automatically — so it can drift
// from reality, which is exactly the wedge Scenario 3 drives in.
type TableStats struct {
	Rows     int
	Distinct map[string]int // per column
}

// Table is a stored relation: schema, heap file, secondary indexes.
//
// Lock order: Catalog.mu (when held at all) strictly before Table.mu.
// Table.mu guards Stats and the Indexes map; both are replaced, never
// mutated in place, so snapshot accessors hand out values that stay
// valid after the lock drops. Name/Cols/Heap are immutable after
// CreateTable.
type Table struct {
	Name string
	Cols []Column
	Heap *storage.HeapFile

	mu      sync.RWMutex
	Indexes map[string]*storage.BTree // by column name; guarded by mu
	Stats   TableStats                // guarded by mu
}

// StatsSnapshot returns the current statistics. The Distinct map is
// shared but never mutated in place (Analyze/SetStats install fresh
// maps), so the snapshot is safe to read without further locking.
func (t *Table) StatsSnapshot() TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.Stats
}

// ColIndex resolves a column name to its position.
func (t *Table) ColIndex(name string) (int, bool) {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// Catalog owns tables over one storage instance. When db is non-nil
// the catalog is durable: DDL is redo-logged (files, schemas, index
// definitions) so NewDurableCatalog can rebuild it after a crash.
type Catalog struct {
	mu     sync.RWMutex
	store  *storage.Store
	bm     *storage.BufferManager
	tables map[string]*Table
	db     *storage.DB // nil for a volatile catalog
}

// Catalog errors.
var (
	ErrNoTable     = errors.New("query: no such table")
	ErrNoColumn    = errors.New("query: no such column")
	ErrTableExists = errors.New("query: table exists")
	ErrArity       = errors.New("query: wrong number of values")
	ErrType        = errors.New("query: type mismatch")
)

// NewCatalog builds a catalog over fresh storage with the given
// buffer-pool size in frames.
func NewCatalog(bufferFrames int) *Catalog {
	store := storage.NewStore()
	return &Catalog{
		store:  store,
		bm:     storage.NewBufferManager(store, bufferFrames, storage.NewLRU()),
		tables: map[string]*Table{},
	}
}

// Buffer exposes the buffer manager (grain ablation, policy swaps).
func (c *Catalog) Buffer() *storage.BufferManager { return c.bm }

// CreateTable registers a new table. On a durable catalog the heap
// file and schema are redo-logged before the table is visible.
func (c *Catalog) CreateTable(name string, cols []Column) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	var heap *storage.HeapFile
	if c.db != nil {
		h, err := c.db.CreateFile(name)
		if err != nil {
			return nil, err
		}
		if err := c.db.SetMeta(schemaMetaPrefix+key, encodeSchema(cols)); err != nil {
			return nil, err
		}
		heap = h
	} else {
		heap = storage.NewHeapFile(name, c.store, c.bm)
	}
	t := &Table{
		Name:    name,
		Cols:    cols,
		Heap:    heap,
		Indexes: map[string]*storage.BTree{},
		Stats:   TableStats{Distinct: map[string]int{}},
	}
	c.tables[key] = t
	return t, nil
}

// Table resolves a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// Tables lists table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// CreateIndex builds a B-tree on table.col, backfilling existing rows.
// This is also the operation Scenario 3's re-optimiser performs when
// it decides to "add an index to one of the tables" mid-query.
func (c *Catalog) CreateIndex(table, col string) (*storage.BTree, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	ci, ok := t.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, table, col)
	}
	// Hold the table write lock across backfill + install so the scan
	// and the map swap are atomic with respect to concurrent DML (which
	// holds the read lock for heap change + index maintenance).
	t.mu.Lock()
	defer t.mu.Unlock()
	key := strings.ToLower(col)
	if idx, ok := t.Indexes[key]; ok {
		return idx, nil // idempotent
	}
	idx := storage.NewBTree(t.Name + "_" + key)
	err = t.Heap.Scan(func(rid storage.RID, tu storage.Tuple) bool {
		idx.Insert(tu[ci], rid)
		return true
	})
	if err != nil {
		return nil, err
	}
	if c.db != nil {
		// Log the definition, not the tree: recovery rebuilds by
		// backfilling the recovered heap.
		if err := c.db.LogIndex(storage.IndexDef{
			Name: t.Name + "_" + key, File: t.Heap.Name(), Col: ci,
		}); err != nil {
			return nil, err
		}
	}
	next := make(map[string]*storage.BTree, len(t.Indexes)+1)
	for k, v := range t.Indexes {
		next[k] = v
	}
	next[key] = idx
	t.Indexes = next
	return idx, nil
}

// Index returns the index on table.col if one exists.
func (t *Table) Index(col string) (*storage.BTree, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.Indexes[strings.ToLower(col)]
	return idx, ok
}

// checkType verifies a value is assignable to a column.
func checkType(v storage.Value, ct ColumnType) bool {
	if v.IsNull() {
		return true
	}
	switch ct {
	case TInt:
		return v.Kind == storage.KindInt
	case TFloat:
		return v.Kind == storage.KindFloat || v.Kind == storage.KindInt
	case TString:
		return v.Kind == storage.KindString
	case TBool:
		return v.Kind == storage.KindBool
	}
	return false
}

// Insert adds a row, maintaining indexes. Statistics are NOT updated
// (run Analyze) — deliberate, per the package comment.
func (c *Catalog) Insert(table string, row storage.Tuple) (storage.RID, error) {
	return c.InsertTxn(table, row, nil)
}

// InsertTxn is Insert inside txn: the row lands immediately but
// carries the transaction's id as xmin, so only the writer sees it
// until Commit. Index entries are inserted eagerly (index entries
// cover every version; readers filter at fetch) and removed again on
// rollback.
func (c *Catalog) InsertTxn(table string, row storage.Tuple, txn *storage.Txn) (storage.RID, error) {
	t, err := c.Table(table)
	if err != nil {
		return storage.RID{}, err
	}
	if len(row) != len(t.Cols) {
		return storage.RID{}, fmt.Errorf("%w: got %d, want %d", ErrArity, len(row), len(t.Cols))
	}
	for i, v := range row {
		if !checkType(v, t.Cols[i].Type) {
			return storage.RID{}, fmt.Errorf("%w: column %s wants %s, got %v",
				ErrType, t.Cols[i].Name, t.Cols[i].Type, v)
		}
		// Normalise ints assigned to FLOAT columns.
		if t.Cols[i].Type == TFloat && v.Kind == storage.KindInt {
			row[i] = storage.FloatValue(float64(v.Int))
		}
	}
	// Read lock pairs heap insert + index maintenance against
	// CreateIndex's backfill (which holds the write lock): a row lands
	// either before the backfill scan or after the new index installs.
	t.mu.RLock()
	defer t.mu.RUnlock()
	var rid storage.RID
	if txn != nil {
		rid, err = txn.Insert(t.Heap, row)
	} else {
		rid, err = t.Heap.Insert(row)
	}
	if err != nil {
		return storage.RID{}, err
	}
	for col, idx := range t.Indexes {
		ci, _ := t.ColIndex(col)
		idx.Insert(row[ci], rid)
	}
	if txn != nil && len(t.Indexes) > 0 {
		keys := row.Clone()
		txn.OnRollback(func() error {
			t.mu.RLock()
			defer t.mu.RUnlock()
			for col, idx := range t.Indexes {
				ci, _ := t.ColIndex(col)
				idx.Delete(keys[ci], rid)
			}
			return nil
		})
	}
	return rid, nil
}

// Delete removes rows matching pred; returns the count.
func (c *Catalog) Delete(table string, pred func(storage.Tuple) bool) (int, error) {
	t, err := c.Table(table)
	if err != nil {
		return 0, err
	}
	type victim struct {
		rid storage.RID
		row storage.Tuple
	}
	var victims []victim
	err = t.Heap.Scan(func(rid storage.RID, tu storage.Tuple) bool {
		if pred == nil || pred(tu) {
			victims = append(victims, victim{rid, tu.Clone()})
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, v := range victims {
		if err := t.Heap.Delete(v.rid); err != nil {
			return 0, err
		}
		for col, idx := range t.Indexes {
			ci, _ := t.ColIndex(col)
			idx.Delete(v.row[ci], v.rid)
		}
	}
	return len(victims), nil
}

// DeleteTxn is Delete inside txn: victims are chosen from the
// transaction's snapshot and claimed by stamping xmax — the claim IS
// the write lock, so a concurrent claimer aborts with
// storage.ErrWriteConflict (first-committer-wins). Index entries stay:
// the old version must remain reachable by older snapshots, and
// readers filter invisible versions at fetch.
func (c *Catalog) DeleteTxn(table string, pred func(storage.Tuple) bool, txn *storage.Txn) (int, error) {
	if txn == nil {
		return c.Delete(table, pred)
	}
	t, err := c.Table(table)
	if err != nil {
		return 0, err
	}
	type victim struct {
		rid storage.RID
		row storage.Tuple
	}
	var victims []victim
	err = txn.View(t.Heap).Scan(func(rid storage.RID, tu storage.Tuple) bool {
		if pred == nil || pred(tu) {
			victims = append(victims, victim{rid, tu.Clone()})
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, v := range victims {
		nrid, err := txn.Delete(t.Heap, v.rid)
		if err != nil {
			return n, err
		}
		if nrid != v.rid {
			// Claiming a plain record upgrades it to versioned form,
			// which can move it within its page: repoint the entries so
			// older snapshots still reach the (still-visible) version.
			for col, idx := range t.Indexes {
				ci, _ := t.ColIndex(col)
				idx.Delete(v.row[ci], v.rid)
				idx.Insert(v.row[ci], nrid)
			}
		}
		n++
	}
	return n, nil
}

// Update applies set to rows matching pred; returns the count.
func (c *Catalog) Update(table string, pred func(storage.Tuple) bool,
	set map[string]storage.Value) (int, error) {
	t, err := c.Table(table)
	if err != nil {
		return 0, err
	}
	setIdx := map[int]storage.Value{}
	for col, v := range set {
		ci, ok := t.ColIndex(col)
		if !ok {
			return 0, fmt.Errorf("%w: %s.%s", ErrNoColumn, table, col)
		}
		if !checkType(v, t.Cols[ci].Type) {
			return 0, fmt.Errorf("%w: column %s", ErrType, col)
		}
		if t.Cols[ci].Type == TFloat && v.Kind == storage.KindInt {
			v = storage.FloatValue(float64(v.Int))
		}
		setIdx[ci] = v
	}
	type hit struct {
		rid storage.RID
		old storage.Tuple
	}
	var hits []hit
	err = t.Heap.Scan(func(rid storage.RID, tu storage.Tuple) bool {
		if pred == nil || pred(tu) {
			hits = append(hits, hit{rid, tu.Clone()})
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, h := range hits {
		nu := h.old.Clone()
		for ci, v := range setIdx {
			nu[ci] = v
		}
		nrid, err := t.Heap.Update(h.rid, nu)
		if err != nil {
			return 0, err
		}
		for col, idx := range t.Indexes {
			ci, _ := t.ColIndex(col)
			if !storage.Equal(h.old[ci], nu[ci]) || nrid != h.rid {
				idx.Delete(h.old[ci], h.rid)
				idx.Insert(nu[ci], nrid)
			}
		}
	}
	return len(hits), nil
}

// UpdateTxn is Update inside txn: each snapshot-visible hit has its
// old version claimed (xmax = txn id) and a new version inserted with
// xmin = txn id. Index entries for the new version are inserted
// eagerly on every index and removed on rollback; the old version's
// entries stay for older snapshots.
func (c *Catalog) UpdateTxn(table string, pred func(storage.Tuple) bool,
	set map[string]storage.Value, txn *storage.Txn) (int, error) {
	if txn == nil {
		return c.Update(table, pred, set)
	}
	t, err := c.Table(table)
	if err != nil {
		return 0, err
	}
	setIdx := map[int]storage.Value{}
	for col, v := range set {
		ci, ok := t.ColIndex(col)
		if !ok {
			return 0, fmt.Errorf("%w: %s.%s", ErrNoColumn, table, col)
		}
		if !checkType(v, t.Cols[ci].Type) {
			return 0, fmt.Errorf("%w: column %s", ErrType, col)
		}
		if t.Cols[ci].Type == TFloat && v.Kind == storage.KindInt {
			v = storage.FloatValue(float64(v.Int))
		}
		setIdx[ci] = v
	}
	type hit struct {
		rid storage.RID
		old storage.Tuple
	}
	var hits []hit
	err = txn.View(t.Heap).Scan(func(rid storage.RID, tu storage.Tuple) bool {
		if pred == nil || pred(tu) {
			hits = append(hits, hit{rid, tu.Clone()})
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, h := range hits {
		nu := h.old.Clone()
		for ci, v := range setIdx {
			nu[ci] = v
		}
		orid, nrid, err := txn.Update(t.Heap, h.rid, nu)
		if err != nil {
			return n, err
		}
		for col, idx := range t.Indexes {
			ci, _ := t.ColIndex(col)
			if orid != h.rid {
				// The claim moved the old version (plain→versioned
				// upgrade): repoint its entries.
				idx.Delete(h.old[ci], h.rid)
				idx.Insert(h.old[ci], orid)
			}
			idx.Insert(nu[ci], nrid)
		}
		if len(t.Indexes) > 0 {
			keys := nu.Clone()
			newRID := nrid
			txn.OnRollback(func() error {
				t.mu.RLock()
				defer t.mu.RUnlock()
				for col, idx := range t.Indexes {
					ci, _ := t.ColIndex(col)
					idx.Delete(keys[ci], newRID)
				}
				return nil
			})
		}
		n++
	}
	return n, nil
}

// Analyze refreshes a table's statistics from its actual contents.
func (c *Catalog) Analyze(table string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	distinct := make([]map[string]struct{}, len(t.Cols))
	for i := range distinct {
		distinct[i] = map[string]struct{}{}
	}
	rows := 0
	err = t.Heap.Scan(func(_ storage.RID, tu storage.Tuple) bool {
		rows++
		for i, v := range tu {
			distinct[i][v.String()] = struct{}{}
		}
		return true
	})
	if err != nil {
		return err
	}
	fresh := TableStats{Rows: rows, Distinct: map[string]int{}}
	for i, d := range distinct {
		fresh.Distinct[strings.ToLower(t.Cols[i].Name)] = len(d)
	}
	t.mu.Lock()
	t.Stats = fresh // installed wholesale, never mutated in place
	t.mu.Unlock()
	// Statistics refresh doubles as the in-memory engines' zone-map
	// build point (durable engines also rebuild at every checkpoint).
	return t.Heap.BuildZoneMaps()
}

// SetStats force-sets statistics (experiments inject stale values).
func (c *Catalog) SetStats(table string, stats TableStats) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Stats = stats
	return nil
}

// Scan returns an iterator over a table's rows.
func (c *Catalog) Scan(table string) (operators.Iterator, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	return operators.NewHeapScan(t.Heap), nil
}

package query

import (
	"sync"
	"testing"

	"github.com/adm-project/adm/internal/trace"
)

// TestWorkerPanicDegradesToSerial injects a panic into every phase of
// every worker of the parallel executor, one at a time, and requires
// each query to return exactly the serial plan's rows with the panic
// contained — one bad worker degrades the query, never the process.
func TestWorkerPanicDegradesToSerial(t *testing.T) {
	queries := []string{
		"SELECT id, city, age FROM users",
		"SELECT id, age FROM users WHERE age > 40",
		"SELECT u.id, o.amount FROM users u JOIN orders o ON u.id = o.user_id",
		"SELECT city, COUNT(*) FROM users GROUP BY city",
		"SELECT u.city, SUM(o.amount) FROM users u JOIN orders o ON u.id = o.user_id GROUP BY u.city",
		"SELECT id, age FROM users ORDER BY id DESC LIMIT 7",
	}
	for _, sql := range queries {
		t.Run(sql, func(t *testing.T) {
			log := trace.New()
			e := NewEngine(NewCatalog(256), log, nil)
			seedParallel(t, e)
			want := rowsMultiset(e.MustExec(sql))

			// Discovery run: record every (worker, phase) the executor
			// actually visits for this query shape.
			type site struct {
				worker int
				phase  string
			}
			var mu sync.Mutex
			seen := map[site]bool{}
			_, _, err := e.ExecuteSQL(sql, ExecOptions{
				Workers: 4,
				panicInWorker: func(w int, phase string) {
					mu.Lock()
					seen[site{w, phase}] = true
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatalf("discovery run: %v", err)
			}
			if len(seen) == 0 {
				t.Fatal("discovery run visited no worker phases")
			}

			for target := range seen {
				panics := log.Count(trace.KindPanic)
				res, rep, err := e.ExecuteSQL(sql, ExecOptions{
					Workers: 4,
					panicInWorker: func(w int, phase string) {
						if w == target.worker && phase == target.phase {
							panic("injected worker failure")
						}
					},
				})
				if err != nil {
					t.Fatalf("panic at worker %d phase %s: query failed: %v", target.worker, target.phase, err)
				}
				if !rep.PanicContained {
					t.Fatalf("panic at worker %d phase %s: not reported as contained", target.worker, target.phase)
				}
				if rep.Parallel {
					t.Fatalf("panic at worker %d phase %s: report still claims parallel", target.worker, target.phase)
				}
				got := rowsMultiset(res)
				if len(got) != len(want) {
					t.Fatalf("panic at worker %d phase %s: %d rows, want %d", target.worker, target.phase, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("panic at worker %d phase %s: row %d = %q, want %q",
							target.worker, target.phase, i, got[i], want[i])
					}
				}
				if log.Count(trace.KindPanic) != panics+1 {
					t.Fatalf("panic at worker %d phase %s: no panic trace event emitted", target.worker, target.phase)
				}
			}
		})
	}
}

// TestAllWorkersPanic panics every worker simultaneously: containment
// must still latch exactly one failure and fall back to serial.
func TestAllWorkersPanic(t *testing.T) {
	log := trace.New()
	e := NewEngine(NewCatalog(256), log, nil)
	seedParallel(t, e)
	sql := "SELECT u.city, SUM(o.amount) FROM users u JOIN orders o ON u.id = o.user_id GROUP BY u.city"
	want := rowsMultiset(e.MustExec(sql))
	res, rep, err := e.ExecuteSQL(sql, ExecOptions{
		Workers:       4,
		panicInWorker: func(w int, phase string) { panic("every worker dies") },
	})
	if err != nil {
		t.Fatalf("all-worker panic: %v", err)
	}
	if !rep.PanicContained {
		t.Fatal("all-worker panic not contained")
	}
	got := rowsMultiset(res)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

package query

import (
	"errors"
	"fmt"
	"runtime"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// This file wires the morsel-driven exchange layer (operators
// package) into the SQL engine: ExecuteSQL runs SPJ + aggregation
// plans across a configurable worker pool while preserving the
// Scenario 3 safe-point protocol. The parallel build observes the
// cumulative cardinality from every worker; when any worker's
// observation trips the misestimate check, all workers drain at the
// phase barrier and the plan is revised exactly as in the serial
// adaptive executor — the consumed build prefix replays as probe
// input of the side-swapped join, so no tuple is lost or duplicated.

// ExecOptions tunes ExecuteSQL.
type ExecOptions struct {
	// Workers is the worker count; <=0 means GOMAXPROCS.
	Workers int
	// MorselSize is the scan batch granularity; <=0 means the
	// operators-package default (heap scans are page-granular anyway).
	MorselSize int
	// Adaptive tunes mid-query re-optimisation; nil means
	// DefaultAdaptiveConfig() — the safe-point protocol is always on.
	Adaptive *AdaptiveConfig
}

// ExecReport describes how ExecuteSQL ran.
type ExecReport struct {
	// Parallel is false when the statement took the serial path
	// (non-SELECT, or an unsupported shape such as multi-join).
	Parallel bool
	// Workers is the effective worker count of a parallel run.
	Workers int
	// Adaptive reports what the mid-query re-optimiser did.
	Adaptive AdaptiveReport
}

// ExecuteSQL parses and executes one statement with the parallel
// executor. SELECTs over zero or one join run across workers;
// everything else falls back to the serial engine (Report.Parallel
// reports which happened). Result row order is nondeterministic
// unless the statement has an ORDER BY.
func (e *Engine) ExecuteSQL(sql string, opts ExecOptions) (*Result, *ExecReport, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		res, err := e.ExecStmt(st)
		return res, &ExecReport{}, err
	}
	return e.execSelectParallel(sel, opts)
}

func (o ExecOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o ExecOptions) adaptive() AdaptiveConfig {
	if o.Adaptive != nil {
		cfg := *o.Adaptive
		if cfg.Theta <= 1 {
			cfg.Theta = 3
		}
		if cfg.CheckEvery <= 0 {
			cfg.CheckEvery = 64
		}
		return cfg
	}
	return DefaultAdaptiveConfig()
}

// scanMorsels builds the morsel source for one scan: page-granular
// shared heap cursors with worker-side filtering on the sequential
// path, a serialised (but still fan-out-feeding) adapter on the index
// path.
func scanMorsels(sp *scanPlan, size int) (operators.MorselSource, error) {
	if sp.indexCol != "" {
		it, err := sp.build()
		if err != nil {
			return nil, err
		}
		return operators.NewIterMorsels(it, size), nil
	}
	var src operators.MorselSource = operators.NewHeapMorsels(sp.table.Heap)
	if len(sp.preds) > 0 {
		pred, err := compilePreds(sp.sch, sp.preds)
		if err != nil {
			return nil, err
		}
		src = operators.NewFilterMorsels(src, pred)
	}
	return src, nil
}

func (e *Engine) execSelectParallel(st *SelectStmt, opts ExecOptions) (*Result, *ExecReport, error) {
	plan, err := e.planSelect(st)
	if err != nil {
		return nil, nil, err
	}
	rep := &ExecReport{}
	if len(plan.joins) > 1 {
		// Multi-join plans stay on the serial executor for now.
		res, err := e.execSelect(st)
		return res, rep, err
	}
	workers := opts.workers()
	rep.Parallel = true
	rep.Workers = workers
	plan.explainTx = fmt.Sprintf("Parallel(workers=%d) ", workers) + plan.explainTx

	span := e.log.Span("query.parallel")
	cfg := operators.ParallelConfig{
		Workers:    workers,
		MorselSize: opts.MorselSize,
		OnWorker: func(w int, phase string, rows int) {
			span.Sub(fmt.Sprintf("w%d", w)).Emit(e.clock(), trace.KindInfo,
				"%s phase done: %d rows", phase, rows)
		},
	}

	if len(plan.joins) == 0 {
		src, err := scanMorsels(plan.scans[0], opts.MorselSize)
		if err != nil {
			return nil, nil, err
		}
		rows, err := operators.DrainParallel(src, cfg)
		if err != nil {
			return nil, nil, err
		}
		res, err := e.finishSelectParallel(plan, rows, cfg)
		return res, rep, err
	}

	// Single join: partitioned parallel hash join under the safe-point
	// protocol.
	acfg := opts.adaptive()
	sides, err := plan.singleJoinSides()
	if err != nil {
		return nil, nil, err
	}
	leftW, rightW := len(plan.scans[0].sch), len(plan.scans[1].sch)
	rep.Adaptive.InitialBuild = sides.build.ref.Binding()
	rep.Adaptive.FinalBuild = sides.build.ref.Binding()
	rep.Adaptive.EstimatedBuildRows = sides.build.estRows

	// Build-side morsels are capped at the safe-point cadence so every
	// worker re-checks the misestimate bound at least every CheckEvery
	// rows of its own progress.
	buildMorsel := acfg.CheckEvery
	if opts.MorselSize > 0 && opts.MorselSize < buildMorsel {
		buildMorsel = opts.MorselSize
	}
	buildSrc, err := scanMorsels(sides.build, buildMorsel)
	if err != nil {
		return nil, nil, err
	}
	limit := acfg.Theta * sides.build.estRows
	safePoint := func(rows int) bool {
		span.Emit(e.clock(), trace.KindSafePoint,
			"build safe point at %d rows (est %.0f)", rows, sides.build.estRows)
		return float64(rows) <= limit
	}
	buildCfg := cfg
	buildCfg.MorselSize = buildMorsel

	bt, prefix, err := operators.ParallelBuild(buildSrc, sides.buildCol, buildCfg, safePoint)
	switch {
	case err == nil:
		// Statistics held: probe straight through.
		probeSrc, err := scanMorsels(sides.probe, opts.MorselSize)
		if err != nil {
			return nil, nil, err
		}
		joined, err := bt.ParallelProbe(probeSrc, sides.probeCol, cfg)
		if err != nil {
			return nil, nil, err
		}
		rep.Adaptive.PeakHashRows = bt.Rows()
		rows := permuteRows(joined, sides.buildIsLeft, leftW, rightW)
		res, err := e.finishSelectParallel(plan, rows, cfg)
		return res, rep, err

	case errors.Is(err, operators.ErrBuildAborted):
		// Violation: every worker has drained at the barrier; revise the
		// plan by swapping sides. The consumed prefix plus the untouched
		// remainder of the build source become the probe stream.
		rep.Adaptive.Replanned = true
		rep.Adaptive.TriggerRow = len(prefix)
		span.Emit(e.clock(), trace.KindViolation,
			"cardinality misestimate: %s build hit %d rows vs est %.0f (θ=%.1f); workers drained at barrier",
			sides.build.ref.Binding(), len(prefix), sides.build.estRows, acfg.Theta)
		newBuild := sides.probe
		rep.Adaptive.FinalBuild = newBuild.ref.Binding()
		span.Emit(e.clock(), trace.KindReoptimize,
			"swapped join build side %s -> %s at row %d",
			rep.Adaptive.InitialBuild, rep.Adaptive.FinalBuild, len(prefix))
		newSrc, err := scanMorsels(newBuild, opts.MorselSize)
		if err != nil {
			return nil, nil, err
		}
		nbt, _, err := operators.ParallelBuild(newSrc, sides.probeCol, cfg, nil)
		if err != nil {
			return nil, nil, err
		}
		replay := operators.NewChainMorsels(
			operators.NewSliceMorsels(prefix, buildMorsel), buildSrc)
		joined, err := nbt.ParallelProbe(replay, sides.buildCol, cfg)
		if err != nil {
			return nil, nil, err
		}
		rep.Adaptive.PeakHashRows = maxInt(len(prefix), nbt.Rows())
		// Output tuples are (newBuild, oldBuild) = (probe, build): the
		// flip of the original orientation.
		rows := permuteRows(joined, !sides.buildIsLeft, leftW, rightW)
		res, err := e.finishSelectParallel(plan, rows, cfg)
		return res, rep, err

	default:
		return nil, nil, err
	}
}

// permuteRows restores declaration order (left, right) for join output
// whose build side was `buildLeft`; build columns come first in each
// joined tuple.
func permuteRows(rows []storage.Tuple, buildLeft bool, leftW, rightW int) []storage.Tuple {
	if buildLeft {
		return rows
	}
	for i, t := range rows {
		out := make(storage.Tuple, 0, leftW+rightW)
		out = append(out, t[rightW:]...)
		out = append(out, t[:rightW]...)
		rows[i] = out
	}
	return rows
}

// finishSelectParallel applies aggregation / ordering / projection /
// limit to the materialised join or scan output. Aggregation runs
// through the parallel partial-accumulator path; ordering and
// projection reuse the serial operators (they are O(result), not
// O(input)).
func (e *Engine) finishSelectParallel(plan *selectPlan, rows []storage.Tuple,
	cfg operators.ParallelConfig) (*Result, error) {
	st := plan.stmt
	hasAgg := false
	for _, item := range st.Items {
		if item.Agg != AggNone {
			hasAgg = true
		}
	}
	if !hasAgg && st.GroupBy == nil {
		return e.finishSelect(plan, operators.NewMemScan(rows))
	}
	ap, err := compileAggregate(st, plan.sch)
	if err != nil {
		return nil, err
	}
	aggRows, err := operators.ParallelHashAggregate(
		operators.NewSliceMorsels(rows, cfg.MorselSize), ap.groupCol, ap.specs, cfg)
	if err != nil {
		return nil, err
	}
	var it operators.Iterator = operators.NewProject(operators.NewMemScan(aggRows), ap.perm)
	if st.OrderBy != nil {
		idx, err := ap.outSch.resolve(*st.OrderBy)
		if err != nil {
			return nil, err
		}
		it = operators.NewSort(it, idx, st.Desc)
	}
	if st.Limit >= 0 {
		it = operators.NewLimit(it, st.Limit)
	}
	out, err := operators.Drain(it)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: ap.outCols, Rows: out, Plan: plan.Explain()}, nil
}

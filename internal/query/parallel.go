package query

import (
	"errors"
	"fmt"
	"runtime"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// This file wires the morsel-driven exchange layer (operators
// package) into the SQL engine: ExecuteSQL runs SPJ + aggregation
// plans across a configurable worker pool while preserving the
// Scenario 3 safe-point protocol. The data plane is the vectorized
// batch path: heap scans decode whole pages into pooled batches,
// filters compact in place inside the scanning worker, and joins
// build/probe on struct keys. The parallel build observes the
// cumulative cardinality from every worker; when any worker's
// observation trips the misestimate check, all workers drain at the
// phase barrier and the plan is revised exactly as in the serial
// adaptive executor — the consumed build prefix replays as probe
// input of the side-swapped join, so no tuple is lost or duplicated.
// Safe points are checked at batch granularity, but the replayed
// prefix counts tuples, so replay is exact regardless of batch size.

// ExecOptions tunes ExecuteSQL.
type ExecOptions struct {
	// Workers is the worker count; <=0 means GOMAXPROCS.
	Workers int
	// BatchSize is the tuples-per-batch granularity of the vectorized
	// exchange; <=0 means the operators-package default (heap scans are
	// page-granular anyway). Results are identical at any batch size —
	// only the amortisation changes.
	BatchSize int
	// MorselSize is the legacy name for BatchSize and is used when
	// BatchSize is zero.
	MorselSize int
	// Adaptive tunes mid-query re-optimisation; nil means
	// DefaultAdaptiveConfig() — the safe-point protocol is always on.
	Adaptive *AdaptiveConfig
	// JoinOrder selects the planner's join-ordering strategy
	// (default JoinOrderGreedy). JoinOrderDeclared is the mis-ordered
	// baseline knob benchmarks use.
	JoinOrder JoinOrder
	// Txn, when non-nil, executes the statement inside that
	// transaction: scans bind to its snapshot (reads stay lock-free
	// across every worker) and DML stamps its id.
	Txn *storage.Txn
	// NoVectorKernels forces the boxed per-row predicate path,
	// disabling the compiled filter kernels and zone-map page pruning.
	// The boxed path is the reference semantics — benchmarks and
	// differential tests flip this to compare against it.
	NoVectorKernels bool
	// Cancel, when non-nil, is polled by the parallel workers between
	// batches: a non-nil return cancels the statement cooperatively
	// and surfaces as its error. Per-statement deadlines and
	// dead-client kills thread through here into the morsel
	// pipelines. Must be safe for concurrent use and cheap.
	Cancel func() error
	// MemBudget, when non-nil, meters the bytes the statement
	// materialises across every parallel phase; overflow cancels it
	// with operators.ErrMemBudget.
	MemBudget *operators.MemBudget

	// panicInWorker, when set (tests only), runs inside each worker
	// goroutine as it finishes a phase — the injection point the
	// panic-containment tests use to blow up a live worker.
	panicInWorker func(worker int, phase string)
}

// ExecReport describes how ExecuteSQL ran.
type ExecReport struct {
	// Parallel is false when the statement took the serial path
	// (non-SELECT, or an unsupported shape such as multi-join).
	Parallel bool
	// Workers is the effective worker count of a parallel run.
	Workers int
	// Adaptive reports what the mid-query re-optimiser did.
	Adaptive AdaptiveReport
	// PanicContained is true when a parallel worker panicked and the
	// statement was transparently re-executed on the serial plan: one
	// bad worker degrades the query instead of killing the process.
	PanicContained bool

	// scans carries the executed plan's scan list out of the run so the
	// outer wrapper can append each scan's filter summary (kernel vs
	// boxed, pages pruned) to the plan rendering post-execution.
	scans []*scanPlan
}

// ExecuteSQL parses and executes one statement with the parallel
// executor. SELECTs over zero or one join run across workers;
// everything else falls back to the serial engine (Report.Parallel
// reports which happened). Result row order is nondeterministic
// unless the statement has an ORDER BY.
func (e *Engine) ExecuteSQL(sql string, opts ExecOptions) (*Result, *ExecReport, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	return e.ExecuteStmt(st, opts)
}

// ExecuteStmt is ExecuteSQL over a pre-parsed statement (the server
// front-end parses once to route transaction control before execution).
func (e *Engine) ExecuteStmt(st Stmt, opts ExecOptions) (*Result, *ExecReport, error) {
	sel, ok := st.(*SelectStmt)
	if !ok {
		res, err := e.ExecStmtTxn(st, opts.Txn)
		return res, &ExecReport{}, err
	}
	return e.execSelectParallel(sel, opts)
}

func (o ExecOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// batchSize resolves the effective batch granularity (0 = operator
// default).
func (o ExecOptions) batchSize() int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return o.MorselSize
}

func (o ExecOptions) adaptive() AdaptiveConfig {
	if o.Adaptive != nil {
		cfg := *o.Adaptive
		if cfg.Theta <= 1 {
			cfg.Theta = 3
		}
		if cfg.CheckEvery <= 0 {
			cfg.CheckEvery = 64
		}
		return cfg
	}
	return DefaultAdaptiveConfig()
}

// scanBatches builds the batch source for one scan: page-granular
// shared heap cursors with kernel-fused filtering (zone-map pruning +
// vectorized conjuncts inside the claiming worker) on the sequential
// path, the boxed in-place filter when kernels are disabled, and a
// serialised (but still fan-out-feeding) adapter on the index path.
func scanBatches(sp *scanPlan, size int) (operators.BatchSource, error) {
	if sp.indexCol != "" {
		it, err := sp.build()
		if err != nil {
			return nil, err
		}
		return operators.NewIterBatches(it, size), nil
	}
	if len(sp.preds) > 0 && !sp.noKernel {
		k, err := sp.filterKernel()
		if err != nil {
			return nil, err
		}
		return operators.NewHeapBatchesKernel(sp.reader, k), nil
	}
	var src operators.BatchSource = operators.NewHeapBatches(sp.reader)
	if len(sp.preds) > 0 {
		pred, err := compilePreds(sp.sch, sp.preds)
		if err != nil {
			return nil, err
		}
		src = operators.NewFilterBatches(src, pred)
	}
	return src, nil
}

// execSelectParallel runs the parallel plan with panic containment:
// a worker panic surfaces as *operators.PanicError after all its
// peers have drained at the phase barrier (the failFlag protocol), at
// which point no goroutine of the failed run is still touching shared
// state — so the statement is transparently re-executed on the serial
// plan. Errors other than contained panics pass through untouched.
func (e *Engine) execSelectParallel(st *SelectStmt, opts ExecOptions) (*Result, *ExecReport, error) {
	res, rep, err := e.execSelectParallelRun(st, opts)
	var pe *operators.PanicError
	if !errors.As(err, &pe) {
		if err == nil && res != nil && rep != nil {
			if rep.Adaptive.Replanned {
				// Post-execution adaptation summary: where the router fired.
				res.Plan += " | " + rep.Adaptive.Describe()
			}
			// Per-scan filter summaries: kernel vs boxed conjuncts and the
			// zone-map prune counters observed during this execution.
			for _, sp := range rep.scans {
				if fs := sp.filterSummary(); fs != "" {
					res.Plan += " | " + fs
				}
			}
		}
		return res, rep, err
	}
	e.log.Span("query.parallel").Emit(e.clock(), trace.KindPanic,
		"worker %d panicked in %s phase (%v); degrading to serial plan", pe.Worker, pe.Phase, pe.Value)
	res, serr := e.execSelect(st, opts.Txn)
	if rep == nil {
		rep = &ExecReport{}
	}
	rep.Parallel = false
	rep.PanicContained = true
	return res, rep, serr
}

func (e *Engine) execSelectParallelRun(st *SelectStmt, opts ExecOptions) (*Result, *ExecReport, error) {
	plan, err := e.planSelectOrder(st, opts.Txn, opts.JoinOrder)
	if err != nil {
		return nil, nil, err
	}
	rep := &ExecReport{}
	if plan.hasCross() {
		// Cartesian attaches (disconnected join graphs) stay on the
		// serial executor.
		res, err := e.execSelect(st, opts.Txn)
		return res, rep, err
	}
	if opts.NoVectorKernels {
		for _, sp := range plan.scans {
			sp.noKernel = true
		}
	}
	rep.scans = plan.scans
	workers := opts.workers()
	batch := opts.batchSize()
	rep.Parallel = true
	rep.Workers = workers
	plan.explainTx = fmt.Sprintf("Parallel(workers=%d) ", workers) + plan.explainTx

	if len(plan.steps) > 1 {
		// Multi-join: the staged router executes the pipeline one hash
		// join at a time, re-routing at safe points on cardinality
		// feedback.
		res, err := e.execStagedJoins(plan, opts, rep)
		return res, rep, err
	}

	span := e.log.Span("query.parallel")
	cfg := operators.ParallelConfig{
		Workers:    workers,
		MorselSize: batch,
		Cancel:     opts.Cancel,
		Budget:     opts.MemBudget,
		OnWorker: func(w int, phase string, rows int) {
			if opts.panicInWorker != nil {
				opts.panicInWorker(w, phase)
			}
			span.Sub(fmt.Sprintf("w%d", w)).Emit(e.clock(), trace.KindInfo,
				"%s phase done: %d rows", phase, rows)
		},
	}

	if len(plan.steps) == 0 {
		src, err := scanBatches(plan.scans[0], batch)
		if err != nil {
			return nil, nil, err
		}
		if st.OrderBy != nil && !hasAggregate(st) && st.GroupBy == nil {
			// Bare ordered scan: runs (or Top-K heaps) form inside the
			// scan workers themselves — pages are claimed, keys extracted
			// and partial orders built without an intermediate unordered
			// materialisation.
			idx, err := plan.sch.resolve(*st.OrderBy)
			if err != nil {
				return nil, nil, err
			}
			rows, err := orderSourceParallel(src, idx, st.Desc, st.Limit, cfg)
			if err != nil {
				return nil, nil, err
			}
			res, err := e.finishProjectTail(plan, rows)
			return res, rep, err
		}
		scanCfg := cfg
		if st.OrderBy == nil && !hasAggregate(st) && st.GroupBy == nil && st.Limit > 0 {
			// Unordered LIMIT: any prefix is valid, so a satisfied quota
			// stops the workers claiming pages (early termination).
			scanCfg.Limit = st.Limit
		}
		rows, err := operators.DrainParallelBatches(src, scanCfg)
		if err != nil {
			return nil, nil, err
		}
		res, err := e.finishSelectParallel(plan, rows, cfg)
		return res, rep, err
	}

	// Single join: partitioned parallel hash join under the safe-point
	// protocol.
	acfg := opts.adaptive()
	sides, err := plan.singleJoinSides()
	if err != nil {
		return nil, nil, err
	}
	leftW, rightW := len(plan.scans[0].sch), len(plan.scans[1].sch)
	rep.Adaptive.InitialBuild = sides.build.ref.Binding()
	rep.Adaptive.FinalBuild = sides.build.ref.Binding()
	rep.Adaptive.EstimatedBuildRows = sides.build.estRows

	// Build-side batches are capped at the safe-point cadence so every
	// worker re-checks the misestimate bound at least every CheckEvery
	// rows of its own progress.
	buildBatch := acfg.CheckEvery
	if batch > 0 && batch < buildBatch {
		buildBatch = batch
	}
	buildSrc, err := scanBatches(sides.build, buildBatch)
	if err != nil {
		return nil, nil, err
	}
	limit := acfg.Theta * sides.build.estRows
	safePoint := func(rows int) bool {
		span.Emit(e.clock(), trace.KindSafePoint,
			"build safe point at %d rows (est %.0f)", rows, sides.build.estRows)
		return float64(rows) <= limit
	}
	if acfg.Disabled {
		safePoint = nil
	}
	buildCfg := cfg
	buildCfg.MorselSize = buildBatch

	bt, prefix, err := operators.ParallelBuildBatches(buildSrc, sides.buildCol, buildCfg, safePoint)
	switch {
	case err == nil:
		// Statistics held: probe straight through.
		probeSrc, err := scanBatches(sides.probe, batch)
		if err != nil {
			return nil, nil, err
		}
		rep.Adaptive.PeakHashRows = bt.Rows()
		rep.Adaptive.ExecutedOrder = []string{sides.build.ref.Binding(), sides.probe.ref.Binding()}
		if cols, names, ok := joinFastCols(st, plan, sides.buildIsLeft); ok {
			out, err := bt.ParallelProbeProject(probeSrc, sides.probeCol, probeLimitCfg(st, cfg), cols, buildWidth(sides.buildIsLeft, leftW, rightW))
			if err != nil {
				return nil, nil, err
			}
			return e.limitResult(plan, names, out), rep, nil
		}
		joined, err := bt.ParallelProbeBatches(probeSrc, sides.probeCol, cfg)
		if err != nil {
			return nil, nil, err
		}
		rows := permuteToDecl(permuteRows(joined, sides.buildIsLeft, leftW, rightW), plan.outPerm)
		res, err := e.finishSelectParallel(plan, rows, cfg)
		return res, rep, err

	case errors.Is(err, operators.ErrBuildAborted):
		// Violation: every worker has drained at the barrier; revise the
		// plan by swapping sides. The consumed prefix plus the untouched
		// remainder of the build source become the probe stream.
		rep.Adaptive.Replanned = true
		rep.Adaptive.Replans = 1
		rep.Adaptive.TriggerRow = len(prefix)
		span.Emit(e.clock(), trace.KindViolation,
			"cardinality misestimate: %s build hit %d rows vs est %.0f (θ=%.1f); workers drained at barrier",
			sides.build.ref.Binding(), len(prefix), sides.build.estRows, acfg.Theta)
		newBuild := sides.probe
		rep.Adaptive.FinalBuild = newBuild.ref.Binding()
		span.Emit(e.clock(), trace.KindReoptimize,
			"swapped join build side %s -> %s at row %d",
			rep.Adaptive.InitialBuild, rep.Adaptive.FinalBuild, len(prefix))
		newSrc, err := scanBatches(newBuild, batch)
		if err != nil {
			return nil, nil, err
		}
		nbt, _, err := operators.ParallelBuildBatches(newSrc, sides.probeCol, cfg, nil)
		if err != nil {
			return nil, nil, err
		}
		replay := operators.NewChainBatches(
			operators.NewSliceBatches(prefix, buildBatch), buildSrc)
		rep.Adaptive.PeakHashRows = maxInt(len(prefix), nbt.Rows())
		rep.Adaptive.ExecutedOrder = []string{newBuild.ref.Binding(), sides.build.ref.Binding()}
		// Output tuples are (newBuild, oldBuild) = (probe, build): the
		// flip of the original orientation.
		if cols, names, ok := joinFastCols(st, plan, !sides.buildIsLeft); ok {
			out, err := nbt.ParallelProbeProject(replay, sides.buildCol, probeLimitCfg(st, cfg), cols, buildWidth(!sides.buildIsLeft, leftW, rightW))
			if err != nil {
				return nil, nil, err
			}
			return e.limitResult(plan, names, out), rep, nil
		}
		joined, err := nbt.ParallelProbeBatches(replay, sides.buildCol, cfg)
		if err != nil {
			return nil, nil, err
		}
		rows := permuteToDecl(permuteRows(joined, !sides.buildIsLeft, leftW, rightW), plan.outPerm)
		res, err := e.finishSelectParallel(plan, rows, cfg)
		return res, rep, err

	default:
		return nil, nil, err
	}
}

// joinFastCols decides whether a join statement can take the fused
// probe-projection path (no aggregate, no GROUP BY, no ORDER BY) and,
// when it can, remaps the projection from declaration order through
// the plan's join order to the probe-output layout (build columns,
// then probe). Resolution errors fall back to the slow path, which
// reports them identically.
func joinFastCols(st *SelectStmt, plan *selectPlan, buildLeft bool) ([]int, []string, bool) {
	if st.GroupBy != nil || st.OrderBy != nil {
		return nil, nil, false
	}
	for _, item := range st.Items {
		if item.Agg != AggNone {
			return nil, nil, false
		}
	}
	cols, names, err := projectionCols(st, plan.sch)
	if err != nil {
		return nil, nil, false
	}
	if plan.outPerm != nil {
		// projectionCols resolved declaration-order positions; the probe
		// output is laid out in join order.
		remapped := make([]int, len(cols))
		for i, c := range cols {
			remapped[i] = plan.outPerm[c]
		}
		cols = remapped
	}
	leftW, rightW := len(plan.scans[0].sch), len(plan.scans[1].sch)
	if !buildLeft {
		// Build side is the right table: left columns live after the
		// rightW build columns, right columns at the front.
		remapped := make([]int, len(cols))
		for i, c := range cols {
			if c < leftW {
				remapped[i] = rightW + c
			} else {
				remapped[i] = c - leftW
			}
		}
		cols = remapped
	}
	return cols, names, true
}

// buildWidth is the tuple width of the join's build side.
func buildWidth(buildLeft bool, leftW, rightW int) int {
	if buildLeft {
		return leftW
	}
	return rightW
}

// limitResult applies the statement's LIMIT (order is already
// nondeterministic, so any prefix is valid) and wraps the rows.
func (e *Engine) limitResult(plan *selectPlan, names []string, rows []storage.Tuple) *Result {
	if st := plan.stmt; st.Limit >= 0 && st.Limit < len(rows) {
		rows = rows[:st.Limit]
	}
	return &Result{Cols: names, Rows: rows, Plan: plan.Explain()}
}

// permuteRows restores declaration order (left, right) for join output
// whose build side was `buildLeft`; build columns come first in each
// joined tuple. The rotation is done in place through one shared
// scratch buffer — probe output rows are arena-carved by this
// executor, never aliased by anyone else, so mutating them is safe.
func permuteRows(rows []storage.Tuple, buildLeft bool, leftW, rightW int) []storage.Tuple {
	if buildLeft {
		return rows
	}
	scratch := make(storage.Tuple, 0, rightW)
	for _, t := range rows {
		scratch = append(scratch[:0], t[:rightW]...)
		copy(t, t[rightW:])
		copy(t[leftW:], scratch)
	}
	return rows
}

// hasAggregate reports whether any select item aggregates.
func hasAggregate(st *SelectStmt) bool {
	for _, item := range st.Items {
		if item.Agg != AggNone {
			return true
		}
	}
	return false
}

// probeLimitCfg attaches the statement's LIMIT as a cooperative probe
// quota when the shape allows it (the fused probe-projection path is
// only taken with no aggregate, GROUP BY or ORDER BY, where any output
// prefix is a valid answer): a satisfied LIMIT stops the probe workers
// claiming batches instead of finishing the scan.
func probeLimitCfg(st *SelectStmt, cfg operators.ParallelConfig) operators.ParallelConfig {
	if st.Limit > 0 {
		cfg.Limit = st.Limit
	}
	return cfg
}

// orderSourceParallel runs the parallel sort pipeline over src: a
// bounded Top-K (limit >= 0) or worker-local runs merged through the
// loser tree. The returned rows are globally ordered and — by the
// shared comparator and content tie-break — identical to the serial
// Sort/TopK output at any worker count and batch size.
func orderSourceParallel(src operators.BatchSource, idx int, desc bool, limit int,
	cfg operators.ParallelConfig) ([]storage.Tuple, error) {
	if limit >= 0 {
		return operators.ParallelTopKBatches(src, idx, desc, limit, cfg)
	}
	merge, err := operators.ParallelSortBatches(src, idx, desc, cfg)
	if err != nil {
		return nil, err
	}
	return operators.Drain(merge)
}

// orderRowsParallel is orderSourceParallel over already-materialised
// rows (join output, aggregate output).
func orderRowsParallel(rows []storage.Tuple, idx int, desc bool, limit int,
	cfg operators.ParallelConfig) ([]storage.Tuple, error) {
	return orderSourceParallel(operators.NewSliceBatches(rows, cfg.MorselSize), idx, desc, limit, cfg)
}

// finishProjectTail is the non-aggregate projection/limit tail: rows
// arrive either unordered (no ORDER BY — any prefix is valid) or
// already globally ordered; the projection is resolved once and the
// whole result mapped through a single arena.
func (e *Engine) finishProjectTail(plan *selectPlan, rows []storage.Tuple) (*Result, error) {
	st := plan.stmt
	cols, names, err := projectionCols(st, plan.sch)
	if err != nil {
		return nil, err
	}
	if st.Limit >= 0 && st.Limit < len(rows) {
		rows = rows[:st.Limit]
	}
	identity := len(cols) == len(plan.sch)
	for i, c := range cols {
		identity = identity && c == i
	}
	if identity { // SELECT * / full-width: nothing to copy
		return &Result{Cols: names, Rows: rows, Plan: plan.Explain()}, nil
	}
	out, err := operators.ProjectTuples(nil, rows, cols)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: names, Rows: out, Plan: plan.Explain()}, nil
}

// finishSelectParallel applies aggregation / ordering / projection /
// limit to the materialised join or scan output. Aggregation runs
// through the parallel partial-accumulator path; ordering through the
// parallel sort/Top-K pipeline (worker runs + loser-tree merge over
// the materialised rows), so plans with ORDER BY stay on the parallel
// batch path end-to-end; plain projections take a batch fast path
// that carves all output values from one arena.
func (e *Engine) finishSelectParallel(plan *selectPlan, rows []storage.Tuple,
	cfg operators.ParallelConfig) (*Result, error) {
	st := plan.stmt
	if !hasAggregate(st) && st.GroupBy == nil {
		if st.OrderBy != nil {
			idx, err := plan.sch.resolve(*st.OrderBy)
			if err != nil {
				return nil, err
			}
			if rows, err = orderRowsParallel(rows, idx, st.Desc, st.Limit, cfg); err != nil {
				return nil, err
			}
		}
		return e.finishProjectTail(plan, rows)
	}
	ap, err := compileAggregate(st, plan.sch)
	if err != nil {
		return nil, err
	}
	aggRows, err := operators.ParallelHashAggregateBatches(
		operators.NewSliceBatches(rows, cfg.MorselSize), ap.groupCol, ap.specs, cfg)
	if err != nil {
		return nil, err
	}
	// Re-project to select-item order through the arena path, then
	// order the (already merged) groups on the same parallel pipeline.
	out, err := operators.ProjectTuples(nil, aggRows, ap.perm)
	if err != nil {
		return nil, err
	}
	if st.OrderBy != nil {
		idx, err := ap.outSch.resolve(*st.OrderBy)
		if err != nil {
			return nil, err
		}
		if out, err = orderRowsParallel(out, idx, st.Desc, st.Limit, cfg); err != nil {
			return nil, err
		}
	}
	if st.Limit >= 0 && st.Limit < len(out) {
		out = out[:st.Limit]
	}
	return &Result{Cols: ap.outCols, Rows: out, Plan: plan.Explain()}, nil
}

package query

import (
	"fmt"
	"strings"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// Engine executes SQL against a catalog.
type Engine struct {
	cat   *Catalog
	log   *trace.Log
	clock func() float64
}

// NewEngine builds an engine; log/clock may be nil.
func NewEngine(cat *Catalog, log *trace.Log, clock func() float64) *Engine {
	if log == nil {
		log = trace.New()
	}
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	return &Engine{cat: cat, log: log, clock: clock}
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *Catalog { return e.cat }

// Trace returns the engine's event log (panic containment and page
// corruption surface here).
func (e *Engine) Trace() *trace.Log { return e.log }

// Result is a query result.
type Result struct {
	Cols []string
	Rows []storage.Tuple
	// Affected counts DML rows.
	Affected int
	// Plan is the EXPLAIN rendering of SELECTs.
	Plan string
}

// Exec parses and executes one statement.
func (e *Engine) Exec(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(st)
}

// ExecTxn parses and executes one statement inside txn: reads see the
// transaction's snapshot, writes stamp its id and become visible only
// at Commit. A nil txn is the legacy autocommit path.
func (e *Engine) ExecTxn(sql string, txn *storage.Txn) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmtTxn(st, txn)
}

// MustExec panics on error (fixtures/benches).
func (e *Engine) MustExec(sql string) *Result {
	r, err := e.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("%s: %v", sql, err))
	}
	return r
}

// ExecStmt executes a parsed statement on the legacy autocommit path.
func (e *Engine) ExecStmt(st Stmt) (*Result, error) {
	return e.ExecStmtTxn(st, nil)
}

// ExecStmtTxn executes a parsed statement, inside txn when non-nil.
// DDL (CREATE TABLE/INDEX, ANALYZE) is rejected inside an explicit
// transaction: catalog changes are not versioned, so they cannot be
// rolled back or hidden from concurrent snapshots.
func (e *Engine) ExecStmtTxn(st Stmt, txn *storage.Txn) (*Result, error) {
	switch s := st.(type) {
	case *SelectStmt:
		return e.execSelect(s, txn)
	case *InsertStmt:
		for _, row := range s.Rows {
			tuple := make(storage.Tuple, len(row))
			copy(tuple, row)
			if _, err := e.cat.InsertTxn(s.Table, tuple, txn); err != nil {
				return nil, err
			}
		}
		return &Result{Affected: len(s.Rows)}, nil
	case *UpdateStmt:
		pred, err := e.wherePred(s.Table, s.Where)
		if err != nil {
			return nil, err
		}
		n, err := e.cat.UpdateTxn(s.Table, pred, s.Set, txn)
		if err != nil {
			return nil, err
		}
		return &Result{Affected: n}, nil
	case *DeleteStmt:
		pred, err := e.wherePred(s.Table, s.Where)
		if err != nil {
			return nil, err
		}
		n, err := e.cat.DeleteTxn(s.Table, pred, txn)
		if err != nil {
			return nil, err
		}
		return &Result{Affected: n}, nil
	case *CreateTableStmt:
		if txn != nil {
			return nil, fmt.Errorf("query: CREATE TABLE is not allowed inside a transaction")
		}
		if _, err := e.cat.CreateTable(s.Name, s.Cols); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndexStmt:
		if txn != nil {
			return nil, fmt.Errorf("query: CREATE INDEX is not allowed inside a transaction")
		}
		if _, err := e.cat.CreateIndex(s.Table, s.Col); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *AnalyzeStmt:
		if txn != nil {
			return nil, fmt.Errorf("query: ANALYZE is not allowed inside a transaction")
		}
		if err := e.cat.Analyze(s.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *ExplainStmt:
		plan, err := e.planSelect(s.Select, txn)
		if err != nil {
			return nil, err
		}
		text := plan.Explain()
		// Render each scan's filter strategy (kernel conjuncts, boxed
		// residual). The kernels compile here solely for the rendering;
		// prune counters read 0/0 since nothing executed.
		for _, sp := range plan.scans {
			if sp.indexCol == "" && len(sp.preds) > 0 && !sp.noKernel {
				if _, err := sp.filterKernel(); err != nil {
					return nil, err
				}
			}
			if fs := sp.filterSummary(); fs != "" {
				text += " | " + fs
			}
		}
		return &Result{
			Cols: []string{"plan"},
			Rows: []storage.Tuple{{storage.StringValue(text)}},
			Plan: text,
		}, nil
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return nil, fmt.Errorf("query: %s requires a session (use session.DBSession)", stmtKeyword(st))
	}
	return nil, fmt.Errorf("query: unsupported statement %T", st)
}

// stmtKeyword names a transaction-control statement for errors.
func stmtKeyword(st Stmt) string {
	switch st.(type) {
	case *BeginStmt:
		return "BEGIN"
	case *CommitStmt:
		return "COMMIT"
	case *RollbackStmt:
		return "ROLLBACK"
	}
	return fmt.Sprintf("%T", st)
}

// wherePred compiles a single-table WHERE clause.
func (e *Engine) wherePred(table string, preds []Pred) (func(storage.Tuple) bool, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	t, err := e.cat.Table(table)
	if err != nil {
		return nil, err
	}
	return compilePreds(tableSchema(table, t), preds)
}

// execSelect plans, compiles and runs a SELECT.
func (e *Engine) execSelect(st *SelectStmt, txn *storage.Txn) (*Result, error) {
	plan, err := e.planSelect(st, txn)
	if err != nil {
		return nil, err
	}
	it, err := plan.buildJoinTree()
	if err != nil {
		return nil, err
	}
	return e.finishSelect(plan, it)
}

// finishSelect applies aggregation/ordering/projection to the joined
// stream and drains it. Split out so the adaptive executor can supply
// its own join pipeline.
func (e *Engine) finishSelect(plan *selectPlan, it operators.Iterator) (*Result, error) {
	st := plan.stmt
	sch := plan.sch

	var outCols []string
	if hasAggregate(st) || st.GroupBy != nil {
		it2, cols, osch, err := e.buildAggregate(st, sch, it)
		if err != nil {
			return nil, err
		}
		it, outCols, sch = it2, cols, osch
		if it, err = buildOrderBy(st, sch, it); err != nil {
			return nil, err
		}
	} else {
		var err error
		if it, err = buildOrderBy(st, sch, it); err != nil {
			return nil, err
		}
		cols, names, err := projectionCols(st, sch)
		if err != nil {
			return nil, err
		}
		outCols = names
		it = operators.NewProject(it, cols)
	}

	if st.Limit >= 0 {
		it = operators.NewLimit(it, st.Limit)
	}
	rows, err := operators.Drain(it)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: outCols, Rows: rows, Plan: plan.Explain()}, nil
}

// buildOrderBy wraps it in the statement's ordering operator: a
// bounded Top-K heap when a LIMIT accompanies the ORDER BY (memory
// O(k), not O(input)), a full sort otherwise, nothing when the
// statement has no ORDER BY. Shared by both serial finishSelect
// branches and the resolution logic of the parallel planner.
func buildOrderBy(st *SelectStmt, sch schema, it operators.Iterator) (operators.Iterator, error) {
	if st.OrderBy == nil {
		return it, nil
	}
	idx, err := sch.resolve(*st.OrderBy)
	if err != nil {
		return nil, err
	}
	if st.Limit >= 0 {
		return operators.NewTopK(it, idx, st.Desc, st.Limit), nil
	}
	return operators.NewSort(it, idx, st.Desc), nil
}

// projectionCols resolves the select list of a non-aggregate SELECT to
// column indexes and output names. Shared by the serial Project
// operator and the parallel batch projection fast path.
func projectionCols(st *SelectStmt, sch schema) ([]int, []string, error) {
	var cols []int
	var names []string
	for _, item := range st.Items {
		if item.Star {
			for i := range sch {
				cols = append(cols, i)
				names = append(names, sch[i].Name)
			}
			continue
		}
		idx, err := sch.resolve(item.Col)
		if err != nil {
			return nil, nil, err
		}
		cols = append(cols, idx)
		names = append(names, sch[idx].Name)
	}
	return cols, names, nil
}

// aggPlan is the compiled aggregate clause, shared by the serial and
// parallel executors: the grouping column, the aggregate specs, and
// the re-projection from the internal [group?, aggs...] layout back to
// select-item order.
type aggPlan struct {
	groupCol int
	specs    []operators.AggSpec
	perm     []int
	outCols  []string
	outSch   schema
}

// compileAggregate validates the select items against the GROUP BY
// clause and produces an aggPlan.
func compileAggregate(st *SelectStmt, sch schema) (*aggPlan, error) {
	groupCol := -1
	if st.GroupBy != nil {
		idx, err := sch.resolve(*st.GroupBy)
		if err != nil {
			return nil, err
		}
		groupCol = idx
	}
	var specs []operators.AggSpec
	type itemSlot struct {
		isGroup bool
		aggIdx  int
		name    string
	}
	var slots []itemSlot
	for _, item := range st.Items {
		if item.Star {
			return nil, fmt.Errorf("query: SELECT * cannot mix with aggregates")
		}
		if item.Agg == AggNone {
			if st.GroupBy == nil || !strings.EqualFold(item.Col.Col, st.GroupBy.Col) {
				return nil, fmt.Errorf("query: non-aggregated column %s outside GROUP BY", item.Col)
			}
			slots = append(slots, itemSlot{isGroup: true, name: item.Col.Col})
			continue
		}
		var kind operators.AggKind
		switch item.Agg {
		case AggCount:
			kind = operators.AggCount
		case AggSum:
			kind = operators.AggSum
		case AggAvg:
			kind = operators.AggAvg
		case AggMin:
			kind = operators.AggMin
		case AggMax:
			kind = operators.AggMax
		}
		col := 0
		if !item.AggStar {
			idx, err := sch.resolve(item.Col)
			if err != nil {
				return nil, err
			}
			col = idx
		}
		name := strings.ToLower(string(item.Agg))
		if item.AggStar {
			name += "(*)"
		} else {
			name += "(" + item.Col.Col + ")"
		}
		slots = append(slots, itemSlot{aggIdx: len(specs), name: name})
		specs = append(specs, operators.AggSpec{Kind: kind, Col: col})
	}
	// Internal layout: [group?] + aggs; re-project to item order.
	base := 0
	if groupCol >= 0 {
		base = 1
	}
	p := &aggPlan{groupCol: groupCol, specs: specs, outSch: schema{}}
	for _, s := range slots {
		if s.isGroup {
			p.perm = append(p.perm, 0)
		} else {
			p.perm = append(p.perm, base+s.aggIdx)
		}
		p.outCols = append(p.outCols, s.name)
		p.outSch = append(p.outSch, boundCol{Name: s.name})
	}
	return p, nil
}

// buildAggregate compiles the aggregate clause over an input iterator.
// Output schema is the select-item order.
func (e *Engine) buildAggregate(st *SelectStmt, sch schema, in operators.Iterator) (operators.Iterator, []string, schema, error) {
	ap, err := compileAggregate(st, sch)
	if err != nil {
		return nil, nil, nil, err
	}
	agg := operators.NewHashAggregate(in, ap.groupCol, ap.specs)
	e.log.Emit(e.clock(), trace.KindInfo, "query", "aggregate over %d specs", len(ap.specs))
	return operators.NewProject(agg, ap.perm), ap.outCols, ap.outSch, nil
}

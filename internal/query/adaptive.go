package query

import (
	"errors"
	"fmt"
	"strings"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// This file implements Scenario 3 (intra-query adaptation): "the
// statistics provided by the metadata are not quite accurate enough
// for the pre-optimisor to build the optimal plan. It becomes obvious
// that the original cost calculations need revised ... The query plan
// is revised to perhaps change the join's inner-loop to the
// outer-loop or add an index to one of the tables. The components
// that carry out this are called upon and linked into the query
// pipeline at run-time."
//
// The executor runs the hash build with safe points every CheckEvery
// rows. When the observed build cardinality exceeds Theta × the
// optimiser's estimate, the build aborts at the safe point and the
// plan is revised: the join sides swap (the consumed build prefix is
// replayed as probe input, so no work is lost and no result is
// duplicated), or — when the revised build side has an index on the
// join column — an index nested-loop join is linked in instead.

// AdaptiveConfig tunes the mid-query re-optimiser.
type AdaptiveConfig struct {
	// Theta is the misestimate ratio that triggers replanning.
	Theta float64
	// CheckEvery is the safe-point cadence in build rows.
	CheckEvery int
	// PreferIndex lets the revised plan use an index nested-loop join
	// when the new inner table has an index on the join column.
	PreferIndex bool
	// Disabled turns safe-point adaptation off entirely: the executor
	// follows the static plan verbatim (no feedback, no replans). Used
	// by benchmarks to isolate plan-time ordering from runtime routing.
	Disabled bool
}

// DefaultAdaptiveConfig returns Theta=3, CheckEvery=64.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{Theta: 3, CheckEvery: 64}
}

// AdaptiveReport describes what the re-optimiser did.
type AdaptiveReport struct {
	Replanned bool
	// Replans counts safe-point plan revisions (the staged multi-join
	// router can revise more than once; the single-join path at most
	// once).
	Replans int
	// TriggerRow is the build row count at which the first violation
	// fired.
	TriggerRow int
	// EstimatedBuildRows is what the optimiser believed.
	EstimatedBuildRows float64
	// InitialBuild / FinalBuild name the build-side bindings (of the
	// first join the router executed, for multi-join plans).
	InitialBuild string
	FinalBuild   string
	// UsedIndex reports an index-NL join was linked in.
	UsedIndex bool
	// PeakHashRows is the largest hash table materialised across the
	// whole execution (memory proxy).
	PeakHashRows int
	// ExecutedOrder lists table bindings in the order the router
	// actually materialised them (empty when execution followed the
	// static plan trivially, e.g. join-free statements).
	ExecutedOrder []string
}

// Describe renders the post-execution adaptation summary appended to
// Explain output. Golden tests pin this format.
func (r *AdaptiveReport) Describe() string {
	if !r.Replanned {
		return "adapt: none"
	}
	s := fmt.Sprintf("adapt: replans=%d trigger=%d build=%s->%s",
		r.Replans, r.TriggerRow, r.InitialBuild, r.FinalBuild)
	if r.UsedIndex {
		s += " index-nl"
	}
	if len(r.ExecutedOrder) > 0 {
		s += " order=" + strings.Join(r.ExecutedOrder, ",")
	}
	return s
}

// ExecSelectAdaptive executes a SELECT with mid-query
// re-optimisation: the single-join safe-point swap, or the staged
// multi-join router for larger pipelines. Join-free and cartesian
// statements fall back to the static path (report.Replanned=false).
func (e *Engine) ExecSelectAdaptive(st *SelectStmt, cfg AdaptiveConfig) (*Result, *AdaptiveReport, error) {
	res, rep, err := e.execSelectAdaptiveRun(st, cfg)
	if err == nil && res != nil && rep != nil && rep.Replanned {
		// Post-execution adaptation summary: where the router fired.
		res.Plan += " | " + rep.Describe()
	}
	return res, rep, err
}

func (e *Engine) execSelectAdaptiveRun(st *SelectStmt, cfg AdaptiveConfig) (*Result, *AdaptiveReport, error) {
	if cfg.Theta <= 1 {
		cfg.Theta = 3
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 64
	}
	plan, err := e.planSelect(st, nil)
	if err != nil {
		return nil, nil, err
	}
	rep := &AdaptiveReport{}
	if cfg.Disabled {
		res, err := e.execSelect(st, nil)
		return res, rep, err
	}
	if len(plan.steps) >= 2 && !plan.hasCross() {
		// Multi-join: the staged router generalises the one-shot
		// side-swap into continuous safe-point adaptation. Run it
		// single-worker so this entry point stays serial.
		rep2 := &ExecReport{}
		res, err := e.execStagedJoins(plan, ExecOptions{Workers: 1, Adaptive: &cfg}, rep2)
		if err != nil {
			return nil, nil, err
		}
		*rep = rep2.Adaptive
		return res, rep, nil
	}
	if len(plan.steps) != 1 || plan.steps[0].cross {
		res, err := e.execSelect(st, nil)
		return res, rep, err
	}

	sides, err := plan.singleJoinSides()
	if err != nil {
		return nil, nil, err
	}
	leftScan, rightScan := plan.scans[0], plan.scans[1]
	build, probe := sides.build, sides.probe
	buildCol, probeCol := sides.buildCol, sides.probeCol
	buildIsLeft := sides.buildIsLeft
	rep.InitialBuild = build.ref.Binding()
	rep.FinalBuild = build.ref.Binding()
	rep.EstimatedBuildRows = build.estRows

	// Run the build with safe points.
	buildIt, err := build.build()
	if err != nil {
		return nil, nil, err
	}
	if err := buildIt.Open(); err != nil {
		return nil, nil, err
	}
	var consumed []storage.Tuple
	limit := cfg.Theta * build.estRows
	violated := false
	for {
		t, ok, err := buildIt.Next()
		if err != nil {
			return nil, nil, errors.Join(err, buildIt.Close())
		}
		if !ok {
			break
		}
		consumed = append(consumed, t)
		if len(consumed)%cfg.CheckEvery == 0 {
			e.log.Emit(e.clock(), trace.KindSafePoint, "query",
				"build safe point at %d rows (est %.0f)", len(consumed), build.estRows)
			if float64(len(consumed)) > limit {
				violated = true
				break
			}
		}
	}

	if !violated {
		// Statistics held: finish the static plan, reusing the
		// materialised build side.
		if cerr := buildIt.Close(); cerr != nil {
			return nil, nil, cerr
		}
		join := operators.NewHashJoin(operators.NewMemScan(consumed), mustBuild(probe), buildCol, probeCol)
		rep.PeakHashRows = len(consumed)
		rep.ExecutedOrder = []string{build.ref.Binding(), probe.ref.Binding()}
		it := plan.toDecl(normalise(join, buildIsLeft, len(leftScan.sch), len(rightScan.sch)))
		res, err := e.finishSelect(plan, it)
		return res, rep, err
	}

	// Violation: revise the plan at the safe point.
	rep.Replanned = true
	rep.Replans = 1
	rep.TriggerRow = len(consumed)
	e.log.Emit(e.clock(), trace.KindViolation, "query",
		"cardinality misestimate: %s build hit %d rows vs est %.0f (θ=%.1f)",
		build.ref.Binding(), len(consumed), build.estRows, cfg.Theta)

	// The consumed prefix + the rest of the old build iterator become
	// the probe stream of the revised join; the old probe side becomes
	// the build. This is the inner↔outer swap — no tuple is read twice
	// from storage and no result can duplicate because nothing was
	// emitted during the build phase.
	restOld := &openedRest{it: buildIt}
	oldBuildStream := concatIter(operators.NewMemScan(consumed), restOld)

	newBuild := probe
	rep.FinalBuild = newBuild.ref.Binding()

	if cfg.PreferIndex {
		if idx, ok := newBuild.table.Index(joinColName(newBuild, plan)); ok && len(newBuild.preds) == 0 {
			// Index NL: outer = old build stream, inner = indexed table.
			rep.UsedIndex = true
			e.log.Emit(e.clock(), trace.KindReoptimize, "query",
				"linked IndexNLJoin(%s) into the pipeline", newBuild.ref.Binding())
			j := operators.NewIndexNLJoin(oldBuildStream, buildCol, idx, newBuild.table.Heap)
			// Output: (oldBuild, newBuild) = (build, probe) original order.
			it := plan.toDecl(normalise(j, buildIsLeft, len(leftScan.sch), len(rightScan.sch)))
			rep.PeakHashRows = len(consumed)
			rep.ExecutedOrder = []string{build.ref.Binding(), newBuild.ref.Binding()}
			res, err := e.finishSelect(plan, it)
			return res, rep, err
		}
	}

	e.log.Emit(e.clock(), trace.KindReoptimize, "query",
		"swapped join build side %s -> %s at row %d",
		rep.InitialBuild, rep.FinalBuild, rep.TriggerRow)
	join := operators.NewHashJoin(mustBuild(newBuild), oldBuildStream, probeCol, buildCol)
	rep.ExecutedOrder = []string{newBuild.ref.Binding(), build.ref.Binding()}
	// Output order is (newBuild, oldBuild) = (probe, build): flip of
	// the original build orientation.
	it := plan.toDecl(normalise(join, !buildIsLeft, len(leftScan.sch), len(rightScan.sch)))
	res, err := e.finishSelect(plan, it)
	if res != nil {
		// Peak memory: the aborted prefix plus the revised build table
		// (actual, observed at Open).
		rep.PeakHashRows = maxInt(len(consumed), join.BuildRows)
	}
	return res, rep, err
}

// joinSides is the resolved orientation of a single-join plan: which
// scan hash-builds and which probes (per the static optimiser's
// choice), with the join-column position local to each side. Shared by
// the serial adaptive executor and the parallel executor so both obey
// the same safe-point/replan geometry.
type joinSides struct {
	build, probe       *scanPlan
	buildCol, probeCol int // join-column positions in each side's own schema
	buildIsLeft        bool
}

// singleJoinSides resolves the orientation of a plan with exactly one
// hash-join step. The step's leftCol indexes the one-scan prefix, so
// it is already local to scans[0].
func (p *selectPlan) singleJoinSides() (*joinSides, error) {
	st := p.steps[0]
	if st.cross {
		return nil, fmt.Errorf("query: cartesian join has no hash sides")
	}
	leftScan, rightScan := p.scans[0], p.scans[1]
	s := &joinSides{build: leftScan, probe: rightScan,
		buildCol: st.leftCol, probeCol: st.rightCol, buildIsLeft: st.buildLeft}
	if !s.buildIsLeft {
		s.build, s.probe = rightScan, leftScan
		s.buildCol, s.probeCol = st.rightCol, st.leftCol
	}
	return s, nil
}

func joinColName(sp *scanPlan, plan *selectPlan) string {
	j := plan.stmt.Joins[0]
	// Return the join column belonging to sp's binding.
	if eqFold(j.LCol.Table, sp.ref.Binding()) {
		return j.LCol.Col
	}
	if eqFold(j.RCol.Table, sp.ref.Binding()) {
		return j.RCol.Col
	}
	// Unqualified: resolve within sp's schema.
	if _, err := sp.sch.resolve(j.LCol); err == nil {
		return j.LCol.Col
	}
	return j.RCol.Col
}

func eqFold(a, b string) bool {
	return a != "" && b != "" && len(a) == len(b) && (a == b || equalsIgnoreCase(a, b))
}

func equalsIgnoreCase(a, b string) bool {
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 32
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mustBuild compiles a scan; planSelect already validated it.
func mustBuild(sp *scanPlan) operators.Iterator {
	it, err := sp.build()
	if err != nil {
		panic(fmt.Sprintf("query: scan build: %v", err))
	}
	return it
}

// normalise restores declaration order (left, right) around a hash
// join whose build side was `buildLeft`.
func normalise(j operators.Iterator, buildLeft bool, leftW, rightW int) operators.Iterator {
	if buildLeft {
		return j
	}
	perm := make([]int, 0, leftW+rightW)
	for k := 0; k < leftW; k++ {
		perm = append(perm, rightW+k)
	}
	for k := 0; k < rightW; k++ {
		perm = append(perm, k)
	}
	return operators.NewProject(j, perm)
}

// openedRest adapts an already-open iterator to the Iterator
// interface (Open is a no-op; the underlying cursor continues).
type openedRest struct {
	it operators.Iterator
}

func (o *openedRest) Open() error { return nil }
func (o *openedRest) Next() (storage.Tuple, bool, error) {
	return o.it.Next()
}
func (o *openedRest) Close() error { return o.it.Close() }

// concatIter yields all of a, then all of b.
func concatIter(a, b operators.Iterator) operators.Iterator {
	return &concatIterator{a: a, b: b}
}

type concatIterator struct {
	a, b operators.Iterator
	onB  bool
	open bool
}

func (c *concatIterator) Open() error {
	c.onB = false
	c.open = true
	if err := c.a.Open(); err != nil {
		return err
	}
	return c.b.Open()
}

func (c *concatIterator) Next() (storage.Tuple, bool, error) {
	if !c.open {
		return nil, false, operators.ErrNotOpen
	}
	if !c.onB {
		t, ok, err := c.a.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return t, true, nil
		}
		c.onB = true
	}
	return c.b.Next()
}

func (c *concatIterator) Close() error {
	c.open = false
	return errors.Join(c.a.Close(), c.b.Close())
}

package query

import (
	"errors"
	"fmt"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// This file implements Scenario 3 (intra-query adaptation): "the
// statistics provided by the metadata are not quite accurate enough
// for the pre-optimisor to build the optimal plan. It becomes obvious
// that the original cost calculations need revised ... The query plan
// is revised to perhaps change the join's inner-loop to the
// outer-loop or add an index to one of the tables. The components
// that carry out this are called upon and linked into the query
// pipeline at run-time."
//
// The executor runs the hash build with safe points every CheckEvery
// rows. When the observed build cardinality exceeds Theta × the
// optimiser's estimate, the build aborts at the safe point and the
// plan is revised: the join sides swap (the consumed build prefix is
// replayed as probe input, so no work is lost and no result is
// duplicated), or — when the revised build side has an index on the
// join column — an index nested-loop join is linked in instead.

// AdaptiveConfig tunes the mid-query re-optimiser.
type AdaptiveConfig struct {
	// Theta is the misestimate ratio that triggers replanning.
	Theta float64
	// CheckEvery is the safe-point cadence in build rows.
	CheckEvery int
	// PreferIndex lets the revised plan use an index nested-loop join
	// when the new inner table has an index on the join column.
	PreferIndex bool
}

// DefaultAdaptiveConfig returns Theta=3, CheckEvery=64.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{Theta: 3, CheckEvery: 64}
}

// AdaptiveReport describes what the re-optimiser did.
type AdaptiveReport struct {
	Replanned bool
	// TriggerRow is the build row count at which the violation fired.
	TriggerRow int
	// EstimatedBuildRows is what the optimiser believed.
	EstimatedBuildRows float64
	// InitialBuild / FinalBuild name the build-side bindings.
	InitialBuild string
	FinalBuild   string
	// UsedIndex reports an index-NL join was linked in.
	UsedIndex bool
	// PeakHashRows is the largest hash table materialised across the
	// whole execution (memory proxy).
	PeakHashRows int
}

// ExecSelectAdaptive executes a single-join SELECT with mid-query
// re-optimisation. Multi-join and join-free statements fall back to
// the static path (report.Replanned=false).
func (e *Engine) ExecSelectAdaptive(st *SelectStmt, cfg AdaptiveConfig) (*Result, *AdaptiveReport, error) {
	if cfg.Theta <= 1 {
		cfg.Theta = 3
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 64
	}
	plan, err := e.planSelect(st, nil)
	if err != nil {
		return nil, nil, err
	}
	rep := &AdaptiveReport{}
	if len(plan.joins) != 1 {
		res, err := e.execSelect(st, nil)
		return res, rep, err
	}

	sides, err := plan.singleJoinSides()
	if err != nil {
		return nil, nil, err
	}
	leftScan, rightScan := plan.scans[0], plan.scans[1]
	build, probe := sides.build, sides.probe
	buildCol, probeCol := sides.buildCol, sides.probeCol
	buildIsLeft := sides.buildIsLeft
	rep.InitialBuild = build.ref.Binding()
	rep.FinalBuild = build.ref.Binding()
	rep.EstimatedBuildRows = build.estRows

	// Run the build with safe points.
	buildIt, err := build.build()
	if err != nil {
		return nil, nil, err
	}
	if err := buildIt.Open(); err != nil {
		return nil, nil, err
	}
	var consumed []storage.Tuple
	limit := cfg.Theta * build.estRows
	violated := false
	for {
		t, ok, err := buildIt.Next()
		if err != nil {
			return nil, nil, errors.Join(err, buildIt.Close())
		}
		if !ok {
			break
		}
		consumed = append(consumed, t)
		if len(consumed)%cfg.CheckEvery == 0 {
			e.log.Emit(e.clock(), trace.KindSafePoint, "query",
				"build safe point at %d rows (est %.0f)", len(consumed), build.estRows)
			if float64(len(consumed)) > limit {
				violated = true
				break
			}
		}
	}

	if !violated {
		// Statistics held: finish the static plan, reusing the
		// materialised build side.
		if cerr := buildIt.Close(); cerr != nil {
			return nil, nil, cerr
		}
		join := operators.NewHashJoin(operators.NewMemScan(consumed), mustBuild(probe), buildCol, probeCol)
		rep.PeakHashRows = len(consumed)
		it := normalise(join, buildIsLeft, len(leftScan.sch), len(rightScan.sch))
		res, err := e.finishSelect(plan, it)
		return res, rep, err
	}

	// Violation: revise the plan at the safe point.
	rep.Replanned = true
	rep.TriggerRow = len(consumed)
	e.log.Emit(e.clock(), trace.KindViolation, "query",
		"cardinality misestimate: %s build hit %d rows vs est %.0f (θ=%.1f)",
		build.ref.Binding(), len(consumed), build.estRows, cfg.Theta)

	// The consumed prefix + the rest of the old build iterator become
	// the probe stream of the revised join; the old probe side becomes
	// the build. This is the inner↔outer swap — no tuple is read twice
	// from storage and no result can duplicate because nothing was
	// emitted during the build phase.
	restOld := &openedRest{it: buildIt}
	oldBuildStream := concatIter(operators.NewMemScan(consumed), restOld)

	newBuild := probe
	rep.FinalBuild = newBuild.ref.Binding()

	if cfg.PreferIndex {
		if idx, ok := newBuild.table.Index(joinColName(newBuild, plan)); ok && len(newBuild.preds) == 0 {
			// Index NL: outer = old build stream, inner = indexed table.
			rep.UsedIndex = true
			e.log.Emit(e.clock(), trace.KindReoptimize, "query",
				"linked IndexNLJoin(%s) into the pipeline", newBuild.ref.Binding())
			j := operators.NewIndexNLJoin(oldBuildStream, buildCol, idx, newBuild.table.Heap)
			// Output: (oldBuild, newBuild) = (build, probe) original order.
			it := normalise(j, buildIsLeft, len(leftScan.sch), len(rightScan.sch))
			rep.PeakHashRows = len(consumed)
			res, err := e.finishSelect(plan, it)
			return res, rep, err
		}
	}

	e.log.Emit(e.clock(), trace.KindReoptimize, "query",
		"swapped join build side %s -> %s at row %d",
		rep.InitialBuild, rep.FinalBuild, rep.TriggerRow)
	join := operators.NewHashJoin(mustBuild(newBuild), oldBuildStream, probeCol, buildCol)
	// Output order is (newBuild, oldBuild) = (probe, build): flip of
	// the original build orientation.
	it := normalise(join, !buildIsLeft, len(leftScan.sch), len(rightScan.sch))
	res, err := e.finishSelect(plan, it)
	if res != nil {
		// Peak memory: the aborted prefix plus the revised build table
		// (actual, observed at Open).
		rep.PeakHashRows = maxInt(len(consumed), join.BuildRows)
	}
	return res, rep, err
}

// joinSides is the resolved orientation of a single-join plan: which
// scan hash-builds and which probes (per the static optimiser's
// choice), with the join-column position local to each side. Shared by
// the serial adaptive executor and the parallel executor so both obey
// the same safe-point/replan geometry.
type joinSides struct {
	build, probe       *scanPlan
	buildCol, probeCol int // join-column positions in each side's own schema
	buildIsLeft        bool
}

// singleJoinSides resolves the orientation of a plan with exactly one
// join.
func (p *selectPlan) singleJoinSides() (*joinSides, error) {
	leftScan, rightScan := p.scans[0], p.scans[1]
	joined := append(append(schema{}, leftScan.sch...), rightScan.sch...)
	lIdx, err := joined.resolve(p.joins[0].LCol)
	if err != nil {
		return nil, err
	}
	rIdx, err := joined.resolve(p.joins[0].RCol)
	if err != nil {
		return nil, err
	}
	// The ON clause may name the columns in either order.
	if lIdx >= len(leftScan.sch) {
		lIdx, rIdx = rIdx, lIdx
	}
	if lIdx >= len(leftScan.sch) || rIdx < len(leftScan.sch) {
		return nil, fmt.Errorf("query: join %s = %s does not span both inputs",
			p.joins[0].LCol, p.joins[0].RCol)
	}
	rLocal := rIdx - len(leftScan.sch)
	s := &joinSides{build: leftScan, probe: rightScan,
		buildCol: lIdx, probeCol: rLocal, buildIsLeft: p.buildLeft[0]}
	if !s.buildIsLeft {
		s.build, s.probe = rightScan, leftScan
		s.buildCol, s.probeCol = rLocal, lIdx
	}
	return s, nil
}

func joinColName(sp *scanPlan, plan *selectPlan) string {
	j := plan.joins[0]
	// Return the join column belonging to sp's binding.
	if eqFold(j.LCol.Table, sp.ref.Binding()) {
		return j.LCol.Col
	}
	if eqFold(j.RCol.Table, sp.ref.Binding()) {
		return j.RCol.Col
	}
	// Unqualified: resolve within sp's schema.
	if _, err := sp.sch.resolve(j.LCol); err == nil {
		return j.LCol.Col
	}
	return j.RCol.Col
}

func eqFold(a, b string) bool {
	return a != "" && b != "" && len(a) == len(b) && (a == b || equalsIgnoreCase(a, b))
}

func equalsIgnoreCase(a, b string) bool {
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 32
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mustBuild compiles a scan; planSelect already validated it.
func mustBuild(sp *scanPlan) operators.Iterator {
	it, err := sp.build()
	if err != nil {
		panic(fmt.Sprintf("query: scan build: %v", err))
	}
	return it
}

// normalise restores declaration order (left, right) around a hash
// join whose build side was `buildLeft`.
func normalise(j operators.Iterator, buildLeft bool, leftW, rightW int) operators.Iterator {
	if buildLeft {
		return j
	}
	perm := make([]int, 0, leftW+rightW)
	for k := 0; k < leftW; k++ {
		perm = append(perm, rightW+k)
	}
	for k := 0; k < rightW; k++ {
		perm = append(perm, k)
	}
	return operators.NewProject(j, perm)
}

// openedRest adapts an already-open iterator to the Iterator
// interface (Open is a no-op; the underlying cursor continues).
type openedRest struct {
	it operators.Iterator
}

func (o *openedRest) Open() error { return nil }
func (o *openedRest) Next() (storage.Tuple, bool, error) {
	return o.it.Next()
}
func (o *openedRest) Close() error { return o.it.Close() }

// concatIter yields all of a, then all of b.
func concatIter(a, b operators.Iterator) operators.Iterator {
	return &concatIterator{a: a, b: b}
}

type concatIterator struct {
	a, b operators.Iterator
	onB  bool
	open bool
}

func (c *concatIterator) Open() error {
	c.onB = false
	c.open = true
	if err := c.a.Open(); err != nil {
		return err
	}
	return c.b.Open()
}

func (c *concatIterator) Next() (storage.Tuple, bool, error) {
	if !c.open {
		return nil, false, operators.ErrNotOpen
	}
	if !c.onB {
		t, ok, err := c.a.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return t, true, nil
		}
		c.onB = true
	}
	return c.b.Next()
}

func (c *concatIterator) Close() error {
	c.open = false
	return errors.Join(c.a.Close(), c.b.Close())
}

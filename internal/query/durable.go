// Durable catalog: a Catalog whose DDL rides the storage.DB redo log.
// Table heaps are logged files, schemas are WAL metadata records, and
// index definitions are logged for rebuild-by-backfill, so reopening
// the same disks reconstructs the full catalog — tables, rows, and
// secondary indexes — after any crash.
package query

import (
	"errors"
	"fmt"
	"strings"

	"github.com/adm-project/adm/internal/storage"
)

// schemaMetaPrefix keys one WAL metadata record per table; the value
// is the encoded column list.
const schemaMetaPrefix = "table:"

// NewDurableCatalog builds a catalog over an opened crash-safe DB,
// restoring any tables and indexes the DB recovered. The caller owns
// db (checkpointing, stats, closing its disks).
func NewDurableCatalog(db *storage.DB) (*Catalog, error) {
	c := &Catalog{
		store:  db.Store(),
		bm:     db.Buffer(),
		tables: map[string]*Table{},
		db:     db,
	}
	if err := c.restoreDurable(); err != nil {
		return nil, err
	}
	return c, nil
}

// DB returns the durability layer, or nil for a volatile catalog.
func (c *Catalog) DB() *storage.DB { return c.db }

// Checkpoint flushes dirty pages and logs a checkpoint record; no-op
// error on a volatile catalog.
func (c *Catalog) Checkpoint() error {
	if c.db == nil {
		return fmt.Errorf("query: checkpoint on volatile catalog")
	}
	return c.db.Checkpoint()
}

// restoreDurable rebuilds tables from recovered files + schema meta
// and adopts the recovery-backfilled index trees.
func (c *Catalog) restoreDurable() error {
	for _, name := range c.db.Files() {
		key := strings.ToLower(name)
		enc, ok := c.db.Meta(schemaMetaPrefix + key)
		if !ok {
			// CreateFile was durable but the schema record was torn off
			// the log tail: the table was never acknowledged, skip it.
			continue
		}
		cols, err := decodeSchema(enc)
		if err != nil {
			return fmt.Errorf("query: restore %s: %w", name, err)
		}
		h, ok := c.db.File(name)
		if !ok {
			return fmt.Errorf("query: restore %s: heap file missing", name)
		}
		c.tables[key] = &Table{
			Name:    name,
			Cols:    cols,
			Heap:    h,
			Indexes: map[string]*storage.BTree{},
			Stats:   TableStats{Distinct: map[string]int{}},
		}
	}
	for _, def := range c.db.IndexDefs() {
		t, ok := c.tables[strings.ToLower(def.File)]
		if !ok {
			continue // index over a table whose schema never made it
		}
		if def.Col < 0 || def.Col >= len(t.Cols) {
			return fmt.Errorf("query: restore index %s: col %d out of range", def.Name, def.Col)
		}
		tree, ok := c.db.Index(def.Name)
		if !ok {
			continue // fresh DB: definitions logged this run live in Indexes already
		}
		t.Indexes[strings.ToLower(t.Cols[def.Col].Name)] = tree
	}
	// Fresh statistics so the planner's index/scan choices survive the
	// restart. A quarantined page must not block recovery — the table
	// stays queryable (reporting ErrQuarantined when touched), it just
	// keeps default stats.
	for key := range c.tables {
		if err := c.Analyze(key); err != nil && !errors.Is(err, storage.ErrQuarantined) {
			return err
		}
	}
	return nil
}

// encodeSchema serialises a column list as "name TYPE,name TYPE".
// SQL identifiers carry neither spaces nor commas, so the framing is
// unambiguous.
func encodeSchema(cols []Column) string {
	parts := make([]string, len(cols))
	for i, col := range cols {
		parts[i] = col.Name + " " + col.Type.String()
	}
	return strings.Join(parts, ",")
}

func decodeSchema(s string) ([]Column, error) {
	if s == "" {
		return nil, fmt.Errorf("empty schema")
	}
	parts := strings.Split(s, ",")
	cols := make([]Column, len(parts))
	for i, part := range parts {
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad schema column %q", part)
		}
		typ, err := parseColumnType(fields[1])
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: fields[0], Type: typ}
	}
	return cols, nil
}

func parseColumnType(s string) (ColumnType, error) {
	switch strings.ToUpper(s) {
	case "INT":
		return TInt, nil
	case "FLOAT":
		return TFloat, nil
	case "STRING":
		return TString, nil
	case "BOOL":
		return TBool, nil
	}
	return 0, fmt.Errorf("unknown column type %q", s)
}

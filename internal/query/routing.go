package query

import (
	"errors"
	"fmt"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// This file is the eddies-style staged router: the generalisation of
// the single-join safe-point swap to multi-join pipelines. The plan's
// join tree is not compiled into a fixed operator chain; instead the
// router materialises one hash join at a time and, before each one,
// re-decides which remaining scan to attach and which side builds,
// using live cardinality feedback:
//
//   - the joined prefix's cardinality is exact (it is materialised);
//   - every base-scan estimate starts from the optimiser's guess and
//     is corrected upward whenever a safe-point build abort proves it
//     low (est' = max(est·θ, observed)), so repeated misestimates
//     decay geometrically and the loop must terminate;
//   - candidate ranking reuses the planner's attachEst, so the router
//     and the greedy planner agree whenever the statistics were right.
//
// Determinism: a build abort drains every worker at the phase barrier
// and hands back the consumed prefix, which is re-chained in front of
// the untouched remainder of that scan's batch source — no tuple is
// lost or read twice, whatever the worker count or batch size. Join
// output is a set: routing order changes the column layout (undone by
// one final permutation to declaration order) and the row order
// (meaningless without ORDER BY, and ORDER BY has a total-order
// tie-break), never the result multiset.

// execStagedJoins executes a multi-join plan (all steps hash joins)
// with continuous safe-point adaptation. rep.Adaptive is filled in;
// the caller decides Parallel/Workers.
func (e *Engine) execStagedJoins(plan *selectPlan, opts ExecOptions, rep *ExecReport) (*Result, error) {
	workers := opts.workers()
	batch := opts.batchSize()
	acfg := opts.adaptive()
	span := e.log.Span("query.routing")
	cfg := operators.ParallelConfig{
		Workers:    workers,
		MorselSize: batch,
		Cancel:     opts.Cancel,
		Budget:     opts.MemBudget,
		OnWorker: func(w int, phase string, rows int) {
			if opts.panicInWorker != nil {
				opts.panicInWorker(w, phase)
			}
			span.Sub(fmt.Sprintf("w%d", w)).Emit(e.clock(), trace.KindInfo,
				"%s phase done: %d rows", phase, rows)
		},
	}
	// Build batches are capped at the safe-point cadence; every scan
	// source uses that granularity so an aborted prefix re-chains onto
	// its source exactly.
	buildBatch := acfg.CheckEvery
	if batch > 0 && batch < buildBatch {
		buildBatch = batch
	}
	buildCfg := cfg
	buildCfg.MorselSize = buildBatch

	n := len(plan.scans)
	est := make([]float64, n) // live per-scan estimates, corrected on aborts
	for i, sp := range plan.scans {
		est[i] = sp.estRows
	}
	adj := buildAdjacency(n, plan.edges)
	srcs := make([]operators.BatchSource, n)
	src := func(i int) (operators.BatchSource, error) {
		if srcs[i] == nil {
			s, err := scanBatches(plan.scans[i], buildBatch)
			if err != nil {
				return nil, err
			}
			srcs[i] = s
		}
		return srcs[i], nil
	}

	seed := 0
	chosen := make([]bool, n)
	chosen[seed] = true
	attached := 1
	usedEdge := make([]bool, len(plan.edges))
	var layout []int        // scan indices in the intermediate's column order
	var cur []storage.Tuple // materialised joined prefix (nil before first join)
	firstAttempt := true

	for attached < n {
		curEst := est[seed]
		if cur != nil {
			curEst = float64(len(cur))
		}

		// Route: which scan joins next?
		next := -1
		if acfg.Disabled {
			next = attached // follow the static plan verbatim
		} else {
			var bestCost float64
			for c := 0; c < n; c++ {
				if chosen[c] {
					continue
				}
				out, conn := attachEst(curEst, est[c], c, plan.scans, plan.edges, adj, chosen)
				if !conn {
					continue
				}
				cost := out
				if joinIndexAvailable(c, plan.scans, plan.edges, adj, chosen) {
					cost *= 0.9
				}
				if next < 0 || cost < bestCost || (cost == bestCost && est[c] < est[next]) {
					next, bestCost = c, cost
				}
			}
			if next < 0 {
				// Unreachable for plans without cross steps (the join
				// graph is connected), kept as a hard failure rather
				// than a silent cartesian product.
				return nil, fmt.Errorf("query: staged router: no connected join candidate")
			}
		}

		// Hash condition: the first unused ON edge linking next to the
		// prefix (clause order, matching deriveSteps).
		he := -1
		for ei, ed := range plan.edges {
			if usedEdge[ei] {
				continue
			}
			if (ed.a == next && chosen[ed.b]) || (ed.b == next && chosen[ed.a]) {
				he = ei
				break
			}
		}
		if he < 0 {
			return nil, fmt.Errorf("query: staged router: no join edge for %s",
				plan.scans[next].ref.Binding())
		}
		ed := plan.edges[he]
		nextCol, pScan, pCol := ed.aCol, ed.b, ed.bCol
		if ed.b == next {
			nextCol, pScan, pCol = ed.bCol, ed.a, ed.aCol
		}

		// Side choice: the smaller (estimated, or exact for the
		// materialised prefix) side builds.
		buildNext := est[next] < curEst
		if acfg.Disabled {
			buildNext = !plan.steps[attached-1].buildLeft
		}

		var joined []storage.Tuple
		if cur == nil {
			// First join: both sides are base scans.
			bScan, prScan, bCol, prCol := next, pScan, nextCol, pCol
			if !buildNext {
				bScan, prScan, bCol, prCol = pScan, next, pCol, nextCol
			}
			if firstAttempt {
				rep.Adaptive.InitialBuild = plan.scans[bScan].ref.Binding()
				rep.Adaptive.EstimatedBuildRows = est[bScan]
				firstAttempt = false
			}
			bsrc, err := src(bScan)
			if err != nil {
				return nil, err
			}
			bt, prefix, err := e.stagedBuild(plan, span, bsrc, bCol, bScan, est, buildCfg, acfg, rep)
			if err != nil {
				return nil, err
			}
			if bt == nil {
				srcs[bScan] = operators.NewChainBatches(
					operators.NewSliceBatches(prefix, buildBatch), srcs[bScan])
				// Nothing is materialised yet, so even the seed can move:
				// re-pick the cheapest scan under the corrected estimates.
				// (The aborted prefix is chained back, so every scan is
				// still fully replayable.)
				for i := range est {
					if est[i] < est[seed] {
						chosen[seed] = false
						seed = i
						chosen[seed] = true
					}
				}
				continue // re-route with the corrected estimate
			}
			psrc, err := src(prScan)
			if err != nil {
				return nil, err
			}
			joined, err = bt.ParallelProbeBatches(psrc, prCol, cfg)
			if err != nil {
				return nil, err
			}
			rep.Adaptive.FinalBuild = plan.scans[bScan].ref.Binding()
			rep.Adaptive.ExecutedOrder = append(rep.Adaptive.ExecutedOrder,
				plan.scans[bScan].ref.Binding(), plan.scans[prScan].ref.Binding())
			layout = []int{bScan, prScan}
		} else if buildNext {
			bsrc, err := src(next)
			if err != nil {
				return nil, err
			}
			bt, prefix, err := e.stagedBuild(plan, span, bsrc, nextCol, next, est, buildCfg, acfg, rep)
			if err != nil {
				return nil, err
			}
			if bt == nil {
				srcs[next] = operators.NewChainBatches(
					operators.NewSliceBatches(prefix, buildBatch), srcs[next])
				continue
			}
			joined, err = bt.ParallelProbeBatches(
				operators.NewSliceBatches(cur, buildBatch), posIn(plan, layout, pScan, pCol), cfg)
			if err != nil {
				return nil, err
			}
			rep.Adaptive.ExecutedOrder = append(rep.Adaptive.ExecutedOrder, plan.scans[next].ref.Binding())
			layout = append([]int{next}, layout...)
		} else {
			// The materialised prefix builds: its cardinality is exact,
			// so no safe point is needed.
			bt, _, err := operators.ParallelBuildBatches(
				operators.NewSliceBatches(cur, buildBatch), posIn(plan, layout, pScan, pCol), buildCfg, nil)
			if err != nil {
				return nil, err
			}
			if bt.Rows() > rep.Adaptive.PeakHashRows {
				rep.Adaptive.PeakHashRows = bt.Rows()
			}
			psrc, err := src(next)
			if err != nil {
				return nil, err
			}
			joined, err = bt.ParallelProbeBatches(psrc, nextCol, cfg)
			if err != nil {
				return nil, err
			}
			rep.Adaptive.ExecutedOrder = append(rep.Adaptive.ExecutedOrder, plan.scans[next].ref.Binding())
			// Output = (prefix, next): prefix built, probe streamed —
			// ParallelProbeBatches emits (build, probe).
			layout = append(layout, next)
		}
		usedEdge[he] = true
		chosen[next] = true
		attached++
		cur = joined

		// Residual ON equalities now fully covered by the prefix.
		for ei, red := range plan.edges {
			if usedEdge[ei] || !chosen[red.a] || !chosen[red.b] {
				continue
			}
			usedEdge[ei] = true
			cur = filterEqInPlace(cur,
				posIn(plan, layout, red.a, red.aCol), posIn(plan, layout, red.b, red.bCol))
		}
		if len(cur) == 0 {
			break // inner joins only: an empty prefix ends the query
		}
	}

	rows := permuteToDecl(cur, permForLayout(plan, layout))
	return e.finishSelectParallel(plan, rows, cfg)
}

// stagedBuild runs one safe-pointed hash build for scan b. On a
// cardinality violation it corrects est[b], emits the violation /
// re-route trace events and returns (nil, consumedPrefix, nil) — the
// caller re-chains the prefix and re-routes. On success it returns the
// build table.
func (e *Engine) stagedBuild(plan *selectPlan, span *trace.Span, bsrc operators.BatchSource,
	bCol, b int, est []float64, buildCfg operators.ParallelConfig, acfg AdaptiveConfig,
	rep *ExecReport) (*operators.BuildTable, []storage.Tuple, error) {
	var safePoint func(int) bool
	if !acfg.Disabled {
		limit := acfg.Theta * est[b]
		safePoint = func(rows int) bool {
			span.Emit(e.clock(), trace.KindSafePoint,
				"build safe point at %d rows (est %.0f)", rows, est[b])
			return float64(rows) <= limit
		}
	}
	bt, prefix, err := operators.ParallelBuildBatches(bsrc, bCol, buildCfg, safePoint)
	switch {
	case err == nil:
		if bt.Rows() > rep.Adaptive.PeakHashRows {
			rep.Adaptive.PeakHashRows = bt.Rows()
		}
		return bt, prefix, nil
	case errors.Is(err, operators.ErrBuildAborted):
		if !rep.Adaptive.Replanned {
			rep.Adaptive.Replanned = true
			rep.Adaptive.TriggerRow = len(prefix)
		}
		rep.Adaptive.Replans++
		if len(prefix) > rep.Adaptive.PeakHashRows {
			rep.Adaptive.PeakHashRows = len(prefix)
		}
		span.Emit(e.clock(), trace.KindViolation,
			"cardinality misestimate: %s build hit %d rows vs est %.0f (θ=%.1f); workers drained at barrier",
			plan.scans[b].ref.Binding(), len(prefix), est[b], acfg.Theta)
		corrected := est[b] * acfg.Theta
		if float64(len(prefix)) > corrected {
			corrected = float64(len(prefix))
		}
		est[b] = corrected
		span.Emit(e.clock(), trace.KindReoptimize,
			"re-routing remaining joins: %s estimate corrected to %.0f",
			plan.scans[b].ref.Binding(), est[b])
		return nil, prefix, nil
	default:
		return nil, nil, err
	}
}

// posIn locates scan-local column col of scan in the intermediate
// tuple described by layout.
func posIn(plan *selectPlan, layout []int, scan, col int) int {
	o := 0
	for _, si := range layout {
		if si == scan {
			return o + col
		}
		o += len(plan.scans[si].sch)
	}
	return -1
}

// permForLayout computes the layout → declaration-order permutation
// (nil when they already agree, or when there are no rows to permute).
func permForLayout(plan *selectPlan, layout []int) []int {
	if len(layout) != len(plan.scans) {
		return nil // early-exit on empty prefix: nothing to permute
	}
	offs := make([]int, len(plan.scans))
	o := 0
	for _, si := range layout {
		offs[si] = o
		o += len(plan.scans[si].sch)
	}
	byDecl := make([]int, len(plan.scans))
	for ji, sp := range plan.scans {
		byDecl[sp.declPos] = ji
	}
	perm := make([]int, 0, len(plan.sch))
	identity := true
	for d := 0; d < len(byDecl); d++ {
		ji := byDecl[d]
		for k := 0; k < len(plan.scans[ji].sch); k++ {
			p := offs[ji] + k
			identity = identity && p == len(perm)
			perm = append(perm, p)
		}
	}
	if identity {
		return nil
	}
	return perm
}

// filterEqInPlace compacts rows to those where columns a and b are
// non-null and equal (the residual ON predicate semantics). The rows
// are owned by this executor, so in-place compaction is safe.
func filterEqInPlace(rows []storage.Tuple, a, b int) []storage.Tuple {
	out := rows[:0]
	for _, t := range rows {
		av, bv := t[a], t[b]
		if !av.IsNull() && !bv.IsNull() && storage.Equal(av, bv) {
			out = append(out, t)
		}
	}
	return out
}

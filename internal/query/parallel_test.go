package query

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/trace"
)

// seedParallel builds a fixed dataset for serial/parallel equivalence
// checks. All aggregated columns are INT so partial-aggregation merge
// order cannot perturb results (integer sums are exact in float64).
func seedParallel(t *testing.T, e *Engine) {
	t.Helper()
	e.MustExec("CREATE TABLE users (id INT, city STRING, age INT)")
	e.MustExec("CREATE TABLE orders (id INT, user_id INT, amount INT)")
	e.MustExec("CREATE TABLE big (k INT, pad INT)")
	e.MustExec("CREATE TABLE small (k INT, tag INT)")
	cities := []string{"london", "paris", "tokyo", "oslo"}
	for i := 0; i < 120; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO users VALUES (%d, '%s', %d)",
			i, cities[i%len(cities)], 18+i%50))
	}
	for i := 0; i < 900; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d)",
			i, i%120, (i*37)%500))
	}
	for i := 0; i < 1500; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO big VALUES (%d, %d)", i%40, i))
	}
	for i := 0; i < 60; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO small VALUES (%d, %d)", i%40, i))
	}
	e.MustExec("ANALYZE users")
	e.MustExec("ANALYZE orders")
	e.MustExec("ANALYZE big")
	e.MustExec("ANALYZE small")
}

// rowsMultiset renders result rows as a sorted multiset.
func rowsMultiset(r *Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestParallelMatchesSerialDeterminism asserts the parallel executor
// returns the exact same multiset of rows as the serial engine for a
// battery of seeded SPJ/aggregation queries, at 2 and 4 workers —
// including queries that trigger mid-query replanning via injected
// stale statistics.
func TestParallelMatchesSerialDeterminism(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		// lieBig injects stale stats on `big` before the parallel run so
		// the safe-point protocol must fire (serial result is computed
		// before the lie; the lie changes the plan, not the answer).
		lieBig     bool
		wantReplan bool
	}{
		{name: "full scan", sql: "SELECT id, city, age FROM users"},
		{name: "filter", sql: "SELECT id, age FROM users WHERE age > 40"},
		{name: "filter empty", sql: "SELECT id FROM users WHERE age > 1000"},
		{name: "join", sql: "SELECT u.id, o.amount FROM users u JOIN orders o ON u.id = o.user_id"},
		{name: "join with where", sql: "SELECT u.id, o.amount FROM users u JOIN orders o ON u.id = o.user_id WHERE u.age > 30 AND o.amount > 100"},
		{name: "group count", sql: "SELECT city, COUNT(*) FROM users GROUP BY city"},
		{name: "group sum min max", sql: "SELECT user_id, SUM(amount), MIN(amount), MAX(amount) FROM orders GROUP BY user_id"},
		{name: "global avg int", sql: "SELECT AVG(amount), COUNT(*) FROM orders"},
		{name: "join then aggregate", sql: "SELECT u.city, SUM(o.amount) FROM users u JOIN orders o ON u.id = o.user_id GROUP BY u.city"},
		{name: "order by unique key limit", sql: "SELECT id, age FROM users ORDER BY id DESC LIMIT 7"},
		{name: "replanned join", sql: "SELECT b.pad, s.tag FROM big b JOIN small s ON b.k = s.k",
			lieBig: true, wantReplan: true},
		{name: "replanned join aggregate", sql: "SELECT s.tag, COUNT(*), SUM(b.pad) FROM big b JOIN small s ON b.k = s.k GROUP BY s.tag",
			lieBig: true, wantReplan: true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(NewCatalog(256), trace.New(), nil)
			seedParallel(t, e)
			want := rowsMultiset(e.MustExec(tc.sql))
			if tc.lieBig {
				// The optimiser now believes big is tiny, so big becomes
				// the build side and blows through Theta × estimate.
				if err := e.cat.SetStats("big", TableStats{Rows: 3,
					Distinct: map[string]int{"k": 3}}); err != nil {
					t.Fatal(err)
				}
			}
			// Sweep worker counts at the default batch size, then batch
			// sizes at 4 workers: results must be invariant to both —
			// batch granularity changes amortisation, never answers
			// (degenerate 1-tuple batches included).
			configs := []struct{ workers, batch int }{
				{2, 0}, {4, 0}, {4, 1}, {4, 64}, {4, 1024},
			}
			for _, cc := range configs {
				res, rep, err := e.ExecuteSQL(tc.sql,
					ExecOptions{Workers: cc.workers, BatchSize: cc.batch})
				if err != nil {
					t.Fatalf("workers=%d batch=%d: %v", cc.workers, cc.batch, err)
				}
				if !rep.Parallel {
					t.Fatalf("workers=%d batch=%d: expected parallel execution", cc.workers, cc.batch)
				}
				if rep.Workers != cc.workers {
					t.Fatalf("rep.Workers = %d, want %d", rep.Workers, cc.workers)
				}
				if rep.Adaptive.Replanned != tc.wantReplan {
					t.Fatalf("workers=%d batch=%d: Replanned = %v, want %v (report %+v)",
						cc.workers, cc.batch, rep.Adaptive.Replanned, tc.wantReplan, rep.Adaptive)
				}
				got := rowsMultiset(res)
				if len(got) != len(want) {
					t.Fatalf("workers=%d batch=%d: %d rows, want %d",
						cc.workers, cc.batch, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d batch=%d: row %d = %q, want %q",
							cc.workers, cc.batch, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestParallelIndexPathMatchesSerial covers the index-scan morsel
// adapter: the serialised index cursor must feed the worker pool
// without losing or duplicating rows.
func TestParallelIndexPathMatchesSerial(t *testing.T) {
	e := NewEngine(NewCatalog(256), trace.New(), nil)
	seedParallel(t, e)
	e.MustExec("CREATE INDEX ON orders (user_id)")
	sql := "SELECT id, amount FROM orders WHERE user_id = 7"
	want := rowsMultiset(e.MustExec(sql))
	res, rep, err := e.ExecuteSQL(sql, ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Parallel {
		t.Fatal("expected parallel execution")
	}
	got := rowsMultiset(res)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if !strings.Contains(res.Plan, "IndexScan") {
		t.Fatalf("plan %q should use the index", res.Plan)
	}
}

// TestParallelSafePointTrace asserts the protocol's trace shape:
// safepoint events precede the violation, and the reoptimize event
// records the side swap.
func TestParallelSafePointTrace(t *testing.T) {
	log := trace.New()
	e := NewEngine(NewCatalog(256), log, nil)
	seedParallel(t, e)
	if err := e.cat.SetStats("big", TableStats{Rows: 3, Distinct: map[string]int{"k": 3}}); err != nil {
		t.Fatal(err)
	}
	_, rep, err := e.ExecuteSQL("SELECT b.pad, s.tag FROM big b JOIN small s ON b.k = s.k",
		ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Adaptive.Replanned {
		t.Fatalf("expected replanning, report %+v", rep.Adaptive)
	}
	if rep.Adaptive.InitialBuild == rep.Adaptive.FinalBuild {
		t.Fatalf("build side did not swap: %+v", rep.Adaptive)
	}
	if log.Count(trace.KindSafePoint) == 0 {
		t.Fatal("no safepoint events")
	}
	if log.Count(trace.KindViolation) != 1 || log.Count(trace.KindReoptimize) != 1 {
		t.Fatalf("violation/reoptimize counts: %s", log.Summary())
	}
}

// TestParallelNonSelectFallsBack checks DML passes straight through.
func TestParallelNonSelectFallsBack(t *testing.T) {
	e := NewEngine(NewCatalog(64), trace.New(), nil)
	e.MustExec("CREATE TABLE t (x INT)")
	res, rep, err := e.ExecuteSQL("INSERT INTO t VALUES (1), (2)", ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parallel || res.Affected != 2 {
		t.Fatalf("rep=%+v res=%+v", rep, res)
	}
}

// TestParallelSingleWorker sanity-checks the degenerate pool.
func TestParallelSingleWorker(t *testing.T) {
	e := NewEngine(NewCatalog(256), trace.New(), nil)
	seedParallel(t, e)
	sql := "SELECT u.city, COUNT(*) FROM users u JOIN orders o ON u.id = o.user_id GROUP BY u.city"
	want := rowsMultiset(e.MustExec(sql))
	res, rep, err := e.ExecuteSQL(sql, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Parallel || rep.Workers != 1 {
		t.Fatalf("rep = %+v", rep)
	}
	got := rowsMultiset(res)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// Multi-join planner + staged-router tests: greedy ordering, chains of
// 3-5 joins, ON/WHERE resolution edge cases, the workers × batch-size
// determinism matrix under forced replans, and the txn-snapshot
// variant (HeapView readers must survive join reordering).
package query

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// seedChain builds the 4-table chain a(5) ← b(10) ← c(20) ← d(3):
// a.x = b.x, b.y = c.y, c.z = d.z (z = y mod 3).
func seedChain(t *testing.T, e *Engine) {
	t.Helper()
	e.MustExec("CREATE TABLE a (x INT)")
	e.MustExec("CREATE TABLE b (x INT, y INT)")
	e.MustExec("CREATE TABLE c (y INT, z INT)")
	e.MustExec("CREATE TABLE d (z INT)")
	for i := 0; i < 5; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO a VALUES (%d)", i))
	}
	for i := 0; i < 10; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO b VALUES (%d, %d)", i, i*2))
	}
	for i := 0; i < 20; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO c VALUES (%d, %d)", i, i%3))
	}
	for i := 0; i < 3; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO d VALUES (%d)", i))
	}
	for _, tbl := range []string{"a", "b", "c", "d"} {
		e.MustExec("ANALYZE " + tbl)
	}
}

// TestJoinChains runs 3-, 4- and 5-way chains through parser, greedy
// planner and serial executor, with ON clauses referencing earlier
// (not just adjacent) bindings.
func TestJoinChains(t *testing.T) {
	e := newEngine(t)
	seedChain(t, e)
	e.MustExec("CREATE TABLE w (x INT)") // 5th table, joins back to a.x
	for i := 0; i < 5; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO w VALUES (%d)", i))
	}
	e.MustExec("ANALYZE w")

	// 3-way: a ⋈ b ⋈ c. Every a.x matches one b row; b.y = 2x ∈ c.y.
	res := e.MustExec("SELECT a.x, c.z FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y ORDER BY a.x")
	if len(res.Rows) != 5 {
		t.Fatalf("3-way rows = %v (plan %s)", res.Rows, res.Plan)
	}
	for i, r := range res.Rows {
		if r[0].Int != int64(i) || r[1].Int != int64((i*2)%3) {
			t.Fatalf("3-way row %d = %v", i, r)
		}
	}

	// 4-way adds d on c.z: every z ∈ {0,1,2} matches.
	res = e.MustExec("SELECT a.x, d.z FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y JOIN d ON c.z = d.z ORDER BY a.x")
	if len(res.Rows) != 5 {
		t.Fatalf("4-way rows = %v (plan %s)", res.Rows, res.Plan)
	}

	// 5-way: the last ON references the FIRST binding (a.x), not its
	// predecessor — resolution is against the full join schema.
	res = e.MustExec("SELECT a.x, w.x FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y JOIN d ON c.z = d.z JOIN w ON a.x = w.x ORDER BY a.x")
	if len(res.Rows) != 5 {
		t.Fatalf("5-way rows = %v (plan %s)", res.Rows, res.Plan)
	}
	for i, r := range res.Rows {
		if r[0].Int != r[1].Int || r[0].Int != int64(i) {
			t.Fatalf("5-way row %d = %v", i, r)
		}
	}
}

// TestSelfJoinAliases: the same table twice needs distinct bindings;
// with them, a self join works.
func TestSelfJoinAliases(t *testing.T) {
	e := newEngine(t)
	seedChain(t, e)
	if _, err := e.Exec("SELECT * FROM a JOIN a ON a.x = a.x"); err == nil ||
		!strings.Contains(err.Error(), "duplicate table binding") {
		t.Fatalf("got %v", err)
	}
	res := e.MustExec("SELECT a1.x, a2.x FROM a a1 JOIN a a2 ON a1.x = a2.x")
	if len(res.Rows) != 5 {
		t.Fatalf("self-join rows = %v", res.Rows)
	}
}

// TestJoinResolutionErrors covers unknown and ambiguous ON columns and
// same-table ON equalities.
func TestJoinResolutionErrors(t *testing.T) {
	e := newEngine(t)
	e.MustExec("CREATE TABLE p (k INT, v INT)")
	e.MustExec("CREATE TABLE q (k INT, w INT)")
	if _, err := e.Exec("SELECT * FROM p JOIN q ON p.zz = q.k"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("unknown ON column: got %v", err)
	}
	// Unqualified `k` exists in both p and q.
	if _, err := e.Exec("SELECT * FROM p JOIN q ON k = q.k"); !errors.Is(err, ErrNoColumn) ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous ON column: got %v", err)
	}
	// Both sides on one table is a plan-time error, not a filter.
	if _, err := e.Exec("SELECT * FROM p JOIN q ON p.k = p.v"); err == nil ||
		!strings.Contains(err.Error(), "does not span two tables") {
		t.Fatalf("same-table ON: got %v", err)
	}
}

// TestWherePushdownAmbiguity is the satellite-1 regression: an
// unqualified WHERE column present in two joined tables used to bind
// silently to the first scan; it must be an ambiguity error, while the
// qualified form pushes down fine.
func TestWherePushdownAmbiguity(t *testing.T) {
	e := newEngine(t)
	e.MustExec("CREATE TABLE p (k INT, v INT)")
	e.MustExec("CREATE TABLE q (k INT, w INT)")
	e.MustExec("INSERT INTO p VALUES (1, 10), (2, 20)")
	e.MustExec("INSERT INTO q VALUES (1, 100), (2, 200)")
	if _, err := e.Exec("SELECT p.v FROM p JOIN q ON p.k = q.k WHERE k = 1"); !errors.Is(err, ErrNoColumn) ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("unqualified ambiguous WHERE: got %v", err)
	}
	res := e.MustExec("SELECT p.v, q.w FROM p JOIN q ON p.k = q.k WHERE q.k = 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 10 || res.Rows[0][1].Int != 100 {
		t.Fatalf("qualified WHERE rows = %v", res.Rows)
	}
	// A column unique to one table still pushes down unqualified.
	res = e.MustExec("SELECT p.k FROM p JOIN q ON p.k = q.k WHERE w = 200")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 2 {
		t.Fatalf("unique unqualified WHERE rows = %v", res.Rows)
	}
}

// TestCrossJoinLastResort: a join clause whose ON equality does not
// touch the joined table leaves that table disconnected — the planner
// attaches it cartesian and the duplicate edge becomes a residual
// filter.
func TestCrossJoinLastResort(t *testing.T) {
	e := newEngine(t)
	e.MustExec("CREATE TABLE m (x INT)")
	e.MustExec("CREATE TABLE n (x INT)")
	e.MustExec("CREATE TABLE u (v INT)")
	e.MustExec("INSERT INTO m VALUES (0), (1), (2)")
	e.MustExec("INSERT INTO n VALUES (0), (1), (2)")
	e.MustExec("INSERT INTO u VALUES (10), (20)")
	res := e.MustExec("SELECT m.x, u.v FROM m JOIN n ON m.x = n.x JOIN u ON m.x = n.x")
	if !strings.Contains(res.Plan, "CrossJoin") {
		t.Fatalf("plan = %s", res.Plan)
	}
	if len(res.Rows) != 6 { // 3 matched pairs × 2 u rows
		t.Fatalf("rows = %v", res.Rows)
	}
}

// seedStar builds the 4-table star-chain used by the determinism
// matrix: nation(6) ← customer(60) ← orders(300) ← lineitem(1200).
func seedStar(t *testing.T, e *Engine) {
	t.Helper()
	e.MustExec("CREATE TABLE nation (id INT, region INT)")
	e.MustExec("CREATE TABLE customer (id INT, n_id INT)")
	e.MustExec("CREATE TABLE orders (id INT, c_id INT)")
	e.MustExec("CREATE TABLE lineitem (id INT, o_id INT, qty INT)")
	for i := 0; i < 6; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO nation VALUES (%d, %d)", i, i%3))
	}
	for i := 0; i < 60; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO customer VALUES (%d, %d)", i, i%6))
	}
	for i := 0; i < 300; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d)", i, i%60))
	}
	for i := 0; i < 1200; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO lineitem VALUES (%d, %d, %d)", i, i%300, (i*7)%13))
	}
	for _, tbl := range []string{"nation", "customer", "orders", "lineitem"} {
		e.MustExec("ANALYZE " + tbl)
	}
}

// The deliberately mis-ordered 4-table join: largest table first.
const starSQL = "SELECT c.id, l.qty FROM lineitem l JOIN orders o ON l.o_id = o.id" +
	" JOIN customer c ON o.c_id = c.id JOIN nation n ON c.n_id = n.id WHERE n.region = 1"

// TestMultiJoinDeterminismMatrix runs the 4-table join across
// workers 1/4 × batch 1/64/1024 with stale statistics forcing
// mid-query re-routing; the result multiset must match the serial
// engine everywhere, and the ORDER BY variant must be byte-identical.
func TestMultiJoinDeterminismMatrix(t *testing.T) {
	queries := []struct {
		name string
		sql  string
	}{
		{"plain", starSQL},
		{"ordered", starSQL + " ORDER BY l.id"},
		{"aggregate", "SELECT n.id, COUNT(*), SUM(l.qty) FROM lineitem l JOIN orders o ON l.o_id = o.id" +
			" JOIN customer c ON o.c_id = c.id JOIN nation n ON c.n_id = n.id GROUP BY n.id ORDER BY id"},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			e := NewEngine(NewCatalog(256), trace.New(), nil)
			seedStar(t, e)
			want := rowsMultiset(e.MustExec(q.sql))
			// Stale statistics: orders claimed tiny → the router's first
			// build blows through θ·est and must re-route.
			if err := e.cat.SetStats("orders", TableStats{Rows: 2,
				Distinct: map[string]int{"id": 2, "c_id": 2}}); err != nil {
				t.Fatal(err)
			}
			for _, cc := range []struct{ workers, batch int }{
				{1, 0}, {1, 1}, {1, 64}, {1, 1024}, {4, 0}, {4, 1}, {4, 64}, {4, 1024},
			} {
				res, rep, err := e.ExecuteSQL(q.sql, ExecOptions{Workers: cc.workers, BatchSize: cc.batch})
				if err != nil {
					t.Fatalf("workers=%d batch=%d: %v", cc.workers, cc.batch, err)
				}
				if !rep.Parallel {
					t.Fatalf("workers=%d batch=%d: expected the staged parallel path", cc.workers, cc.batch)
				}
				if !rep.Adaptive.Replanned || rep.Adaptive.Replans < 1 {
					t.Fatalf("workers=%d batch=%d: expected forced re-routing, report %+v",
						cc.workers, cc.batch, rep.Adaptive)
				}
				got := rowsMultiset(res)
				if len(got) != len(want) {
					t.Fatalf("workers=%d batch=%d: %d rows, want %d (plan %s)",
						cc.workers, cc.batch, len(got), len(want), res.Plan)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d batch=%d: row %d = %q, want %q",
							cc.workers, cc.batch, i, got[i], want[i])
					}
				}
				if strings.Contains(q.sql, "ORDER BY") {
					// Ordered output: compare positionally, byte for byte.
					serial := e.MustExec(q.sql)
					if len(serial.Rows) != len(res.Rows) {
						t.Fatalf("ordered row count drift: %d vs %d", len(res.Rows), len(serial.Rows))
					}
					for i := range res.Rows {
						if fmt.Sprint(res.Rows[i]) != fmt.Sprint(serial.Rows[i]) {
							t.Fatalf("workers=%d batch=%d: ordered row %d = %v, want %v",
								cc.workers, cc.batch, i, res.Rows[i], serial.Rows[i])
						}
					}
				}
			}
		})
	}
}

// TestMultiJoinDeclaredOrderKnob: JoinOrderDeclared + Disabled runs
// the pipeline exactly as written, with no adaptation — the
// mis-ordered baseline the benchmarks compare against. The answer is
// unchanged.
func TestMultiJoinDeclaredOrderKnob(t *testing.T) {
	e := NewEngine(NewCatalog(256), trace.New(), nil)
	seedStar(t, e)
	want := rowsMultiset(e.MustExec(starSQL))
	res, rep, err := e.ExecuteSQL(starSQL, ExecOptions{
		Workers: 4, JoinOrder: JoinOrderDeclared, Adaptive: &AdaptiveConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adaptive.Replanned {
		t.Fatalf("disabled adaptation still replanned: %+v", rep.Adaptive)
	}
	if !strings.Contains(res.Plan, "SeqScan(l est=") ||
		strings.Index(res.Plan, "SeqScan(l") > strings.Index(res.Plan, "SeqScan(n") {
		t.Fatalf("declared order not preserved: %s", res.Plan)
	}
	got := rowsMultiset(res)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("declared-order answer drifted")
	}
	// Greedy (the default) starts somewhere smaller than lineitem.
	greedy, _, err := e.ExecuteSQL(starSQL, ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(strings.TrimPrefix(greedy.Plan, "Parallel(workers=4) "), "SeqScan(l ") {
		t.Fatalf("greedy kept the mis-ordered seed: %s", greedy.Plan)
	}
}

// TestAdaptiveMultiJoin drives the staged router through the serial
// adaptive entry point: stale stats must produce at least one replan
// and a complete executed order, and the answer must match the static
// engine.
func TestAdaptiveMultiJoin(t *testing.T) {
	e := NewEngine(NewCatalog(256), trace.New(), nil)
	seedStar(t, e)
	want := rowsMultiset(e.MustExec(starSQL))
	if err := e.cat.SetStats("orders", TableStats{Rows: 2,
		Distinct: map[string]int{"id": 2, "c_id": 2}}); err != nil {
		t.Fatal(err)
	}
	st := MustParse(starSQL).(*SelectStmt)
	res, rep, err := e.ExecSelectAdaptive(st, DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replanned || rep.Replans < 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.ExecutedOrder) != 4 {
		t.Fatalf("executed order = %v", rep.ExecutedOrder)
	}
	if !strings.Contains(res.Plan, "adapt: replans=") {
		t.Fatalf("plan missing adaptation summary: %s", res.Plan)
	}
	got := rowsMultiset(res)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("adaptive multi-join answer drifted")
	}
}

// TestMultiJoinTxnSnapshot: a transaction begun before concurrent
// committed inserts keeps its snapshot through the staged multi-join
// router at every worker count — HeapView readers survive join
// reordering and mid-query re-routing.
func TestMultiJoinTxnSnapshot(t *testing.T) {
	db, err := storage.Open(storage.NewMemDisk(), storage.NewMemDisk(),
		storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := NewDurableCatalog(db)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat, nil, nil)
	seedStar(t, e)
	sql := starSQL
	old := db.Txns().Begin()
	wantOld := rowsMultiset(e.MustExec(sql))

	// Concurrent committed writes after old's snapshot: more region-1
	// customers and lineitems.
	writer := db.Txns().Begin()
	if _, err := e.ExecTxn("INSERT INTO customer VALUES (60, 1)", writer); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecTxn("INSERT INTO orders VALUES (300, 60)", writer); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecTxn("INSERT INTO lineitem VALUES (1200, 300, 5)", writer); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// Stale stats so the router re-routes mid-query inside the txn.
	if err := e.cat.SetStats("orders", TableStats{Rows: 2,
		Distinct: map[string]int{"id": 2, "c_id": 2}}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, rep, err := e.ExecuteSQL(sql, ExecOptions{Workers: workers, Txn: old})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.Adaptive.Replanned {
			t.Fatalf("workers=%d: expected re-routing, report %+v", workers, rep.Adaptive)
		}
		got := rowsMultiset(res)
		if fmt.Sprint(got) != fmt.Sprint(wantOld) {
			t.Fatalf("workers=%d: snapshot drift: %d rows vs %d", workers, len(got), len(wantOld))
		}
	}
	// A fresh transaction sees the committed writes.
	fresh := db.Txns().Begin()
	res, _, err := e.ExecuteSQL(sql, ExecOptions{Workers: 4, Txn: fresh})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(wantOld)+1 {
		t.Fatalf("fresh txn rows = %d, want %d", len(res.Rows), len(wantOld)+1)
	}
}

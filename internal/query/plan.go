package query

import (
	"fmt"
	"strings"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
)

// boundCol is one column of a plan node's output schema, qualified by
// the table binding (alias or table name) it came from.
type boundCol struct {
	Binding string
	Name    string
	Type    ColumnType
}

// schema is an ordered column list with resolution helpers.
type schema []boundCol

// resolve finds the position of a column reference. Unqualified names
// must be unambiguous.
func (s schema) resolve(c ColRef) (int, error) {
	found := -1
	for i, bc := range s {
		if !strings.EqualFold(bc.Name, c.Col) {
			continue
		}
		if c.Table != "" && !strings.EqualFold(bc.Binding, c.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("%w: ambiguous column %s", ErrNoColumn, c)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("%w: %s", ErrNoColumn, c)
	}
	return found, nil
}

func (s schema) names() []string {
	out := make([]string, len(s))
	for i, bc := range s {
		out[i] = bc.Name
	}
	return out
}

// tableSchema builds the schema of one bound table.
func tableSchema(binding string, t *Table) schema {
	out := make(schema, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = boundCol{Binding: binding, Name: c.Name, Type: c.Type}
	}
	return out
}

// scanPlan is a base-table access path: heap or index scan plus
// residual filters.
type scanPlan struct {
	ref   TableRef
	table *Table
	sch   schema
	// reader is the heap surface every scan operator of this plan
	// consumes: the raw heap for non-transactional statements, a
	// snapshot-bound HeapView inside a transaction. Selecting it at
	// plan time is the whole of MVCC's read-side integration — the
	// serial, batch and morsel pipelines downstream are unchanged.
	reader   storage.HeapReader
	preds    []Pred // pushed-down single-table predicates
	indexCol string // non-empty when an index path was chosen
	indexLo  storage.Value
	indexHi  storage.Value
	estRows  float64
}

// explain renders the access path.
func (s *scanPlan) explain() string {
	if s.indexCol != "" {
		return fmt.Sprintf("IndexScan(%s.%s est=%.0f)", s.ref.Binding(), s.indexCol, s.estRows)
	}
	return fmt.Sprintf("SeqScan(%s est=%.0f)", s.ref.Binding(), s.estRows)
}

// build compiles the scan into an iterator.
func (s *scanPlan) build() (operators.Iterator, error) {
	var it operators.Iterator
	if s.indexCol != "" {
		idx, _ := s.table.Index(s.indexCol)
		it = operators.NewIndexScan(s.reader, idx, s.indexLo, s.indexHi)
	} else {
		it = operators.NewHeapScan(s.reader)
	}
	if len(s.preds) > 0 {
		pred, err := compilePreds(s.sch, s.preds)
		if err != nil {
			return nil, err
		}
		it = operators.NewFilter(it, pred)
	}
	return it, nil
}

// compilePreds compiles a conjunction into a tuple predicate.
func compilePreds(sch schema, preds []Pred) (operators.Predicate, error) {
	type cp struct {
		idx int
		op  CmpOp
		lit storage.Value
	}
	var cps []cp
	for _, p := range preds {
		i, err := sch.resolve(p.Col)
		if err != nil {
			return nil, err
		}
		cps = append(cps, cp{idx: i, op: p.Op, lit: p.Lit})
	}
	return func(t storage.Tuple) bool {
		for _, c := range cps {
			if t[c.idx].IsNull() {
				return false
			}
			if !c.op.Eval(storage.Compare(t[c.idx], c.lit)) {
				return false
			}
		}
		return true
	}, nil
}

// estimate computes the optimiser's cardinality guess for a scan from
// the (possibly stale) statistics, read via snapshot so planning can
// race Analyze/SetStats without tearing.
func estimate(t *Table, preds []Pred) float64 {
	stats := t.StatsSnapshot()
	rows := float64(stats.Rows)
	if rows <= 0 {
		rows = 1 // unknown table: optimistic, per Scenario 3's setup
	}
	sel := 1.0
	for _, p := range preds {
		switch p.Op {
		case OpEQ:
			d := stats.Distinct[strings.ToLower(p.Col.Col)]
			if d <= 0 {
				d = 10
			}
			sel *= 1 / float64(d)
		case OpNE:
			// barely selective
		default:
			sel *= 1.0 / 3
		}
	}
	est := rows * sel
	if est < 1 {
		est = 1
	}
	return est
}

// selectPlan is the compiled plan of a SelectStmt.
type selectPlan struct {
	scans []*scanPlan  // in join order: scans[0] ⋈ scans[1] ⋈ ...
	joins []JoinClause // joins[i] connects scans[i+1]
	// buildLeft[i] records whether the LEFT (accumulated) side is the
	// hash-build side of join i.
	buildLeft []bool
	sch       schema // schema after all joins (declaration order)
	stmt      *SelectStmt
	explainTx string
}

// Explain returns the plan rendering (tests assert on it).
func (p *selectPlan) Explain() string { return p.explainTx }

// planSelect compiles and optimises a SELECT statement:
// single-table predicates are pushed to their scans; each scan picks
// an index path when its predicates cover an indexed column; each
// join picks its hash-build side by estimated cardinality. A non-nil
// txn binds every scan to that transaction's snapshot.
func (e *Engine) planSelect(st *SelectStmt, txn *storage.Txn) (*selectPlan, error) {
	refs := []TableRef{st.From}
	for _, j := range st.Joins {
		refs = append(refs, j.Table)
	}
	p := &selectPlan{stmt: st}
	var full schema
	for _, ref := range refs {
		t, err := e.cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		var reader storage.HeapReader = t.Heap
		if txn != nil {
			reader = txn.View(t.Heap)
		}
		sp := &scanPlan{ref: ref, table: t, sch: tableSchema(ref.Binding(), t), reader: reader}
		p.scans = append(p.scans, sp)
		full = append(full, sp.sch...)
	}
	p.joins = st.Joins
	p.sch = full

	// Predicate pushdown: each WHERE conjunct references one column,
	// hence one table.
	for _, pred := range st.Where {
		placed := false
		for _, sp := range p.scans {
			if _, err := sp.sch.resolve(pred.Col); err == nil {
				sp.preds = append(sp.preds, pred)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("%w: %s", ErrNoColumn, pred.Col)
		}
	}

	// Access-path selection + estimation.
	for _, sp := range p.scans {
		sp.estRows = estimate(sp.table, sp.preds)
		for _, pred := range sp.preds {
			if _, ok := sp.table.Index(pred.Col.Col); !ok {
				continue
			}
			switch pred.Op {
			case OpEQ:
				sp.indexCol, sp.indexLo, sp.indexHi = strings.ToLower(pred.Col.Col), pred.Lit, pred.Lit
			case OpGT, OpGE:
				sp.indexCol, sp.indexLo, sp.indexHi = strings.ToLower(pred.Col.Col), pred.Lit, storage.StringValue(string(rune(0x10FFFF)))
			case OpLT, OpLE:
				sp.indexCol, sp.indexLo, sp.indexHi = strings.ToLower(pred.Col.Col), storage.NullValue(), pred.Lit
			}
			if sp.indexCol != "" {
				break
			}
		}
	}

	// Join build-side choice: the estimated-smaller input builds.
	leftEst := p.scans[0].estRows
	for i := range p.joins {
		rightEst := p.scans[i+1].estRows
		p.buildLeft = append(p.buildLeft, leftEst <= rightEst)
		// Crude join cardinality estimate for the next level.
		leftEst = leftEst * rightEst / 10
		if leftEst < 1 {
			leftEst = 1
		}
	}

	// Explain text.
	var parts []string
	for i, sp := range p.scans {
		parts = append(parts, sp.explain())
		if i > 0 {
			side := "right"
			if p.buildLeft[i-1] {
				side = "left"
			}
			parts = append(parts, fmt.Sprintf("HashJoin(build=%s)", side))
		}
	}
	p.explainTx = strings.Join(parts, " -> ")
	return p, nil
}

// buildJoinTree compiles the joins into an iterator producing tuples
// in declaration-order schema (left-to-right concatenation) no matter
// which side builds.
func (p *selectPlan) buildJoinTree() (operators.Iterator, error) {
	left, err := p.scans[0].build()
	if err != nil {
		return nil, err
	}
	leftSch := p.scans[0].sch
	for i, j := range p.joins {
		right, err := p.scans[i+1].build()
		if err != nil {
			return nil, err
		}
		rightSch := p.scans[i+1].sch
		joined := append(append(schema{}, leftSch...), rightSch...)
		lIdx, err := joined.resolve(j.LCol)
		if err != nil {
			return nil, err
		}
		rIdx, err := joined.resolve(j.RCol)
		if err != nil {
			return nil, err
		}
		// Normalise: the join columns may appear either side of the ON.
		lcol, rcol := lIdx, rIdx
		if lcol >= len(leftSch) {
			lcol, rcol = rcol, lcol
		}
		if lcol >= len(leftSch) || rcol < len(leftSch) {
			return nil, fmt.Errorf("query: join %s = %s does not span both inputs", j.LCol, j.RCol)
		}
		rcolLocal := rcol - len(leftSch)
		if p.buildLeft[i] {
			// build = left, probe = right → output (left, right): as-is.
			left = operators.NewHashJoin(left, right, lcol, rcolLocal)
		} else {
			// build = right, probe = left → output (right, left):
			// re-project to declaration order.
			j := operators.NewHashJoin(right, left, rcolLocal, lcol)
			perm := make([]int, 0, len(joined))
			for k := range leftSch {
				perm = append(perm, len(rightSch)+k)
			}
			for k := range rightSch {
				perm = append(perm, k)
			}
			left = operators.NewProject(j, perm)
		}
		leftSch = joined
	}
	return left, nil
}

package query

import (
	"fmt"
	"strings"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
)

// boundCol is one column of a plan node's output schema, qualified by
// the table binding (alias or table name) it came from.
type boundCol struct {
	Binding string
	Name    string
	Type    ColumnType
}

// schema is an ordered column list with resolution helpers.
type schema []boundCol

// resolve finds the position of a column reference. Unqualified names
// must be unambiguous.
func (s schema) resolve(c ColRef) (int, error) {
	found := -1
	for i, bc := range s {
		if !strings.EqualFold(bc.Name, c.Col) {
			continue
		}
		if c.Table != "" && !strings.EqualFold(bc.Binding, c.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("%w: ambiguous column %s", ErrNoColumn, c)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("%w: %s", ErrNoColumn, c)
	}
	return found, nil
}

func (s schema) names() []string {
	out := make([]string, len(s))
	for i, bc := range s {
		out[i] = bc.Name
	}
	return out
}

// tableSchema builds the schema of one bound table.
func tableSchema(binding string, t *Table) schema {
	out := make(schema, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = boundCol{Binding: binding, Name: c.Name, Type: c.Type}
	}
	return out
}

// scanPlan is a base-table access path: heap or index scan plus
// residual filters.
type scanPlan struct {
	ref   TableRef
	table *Table
	sch   schema
	// reader is the heap surface every scan operator of this plan
	// consumes: the raw heap for non-transactional statements, a
	// snapshot-bound HeapView inside a transaction. Selecting it at
	// plan time is the whole of MVCC's read-side integration — the
	// serial, batch and morsel pipelines downstream are unchanged.
	reader   storage.HeapReader
	preds    []Pred // pushed-down single-table predicates
	indexCol string // non-empty when an index path was chosen
	indexLo  storage.Value
	indexHi  storage.Value
	estRows  float64
	// declPos is the scan's position in FROM-clause declaration order;
	// the plan's scan list itself is in join order.
	declPos int
	// stats is the table's statistics snapshot, taken once at plan time
	// so the greedy ordering loop reads distinct counts without
	// re-snapshotting per candidate.
	stats TableStats
	// noKernel disables the vectorized filter path (boxed reference
	// executor, for differential testing and ExecOptions).
	noKernel bool
	// kern is the compiled filter kernel, built lazily by filterKernel
	// before the pipeline fans out and then shared by all its workers.
	kern      *operators.FilterKernel
	kernBoxed []Pred // conjuncts the kernel left to the boxed residual
	scanStats *operators.ScanStats
}

// explain renders the access path.
func (s *scanPlan) explain() string {
	if s.indexCol != "" {
		return fmt.Sprintf("IndexScan(%s.%s est=%.0f)", s.ref.Binding(), s.indexCol, s.estRows)
	}
	return fmt.Sprintf("SeqScan(%s est=%.0f)", s.ref.Binding(), s.estRows)
}

// distinctOn returns the statistics' distinct count for one of the
// scan's columns (0 = unknown).
func (s *scanPlan) distinctOn(col int) int {
	return s.stats.Distinct[strings.ToLower(s.sch[col].Name)]
}

// build compiles the scan into an iterator. A filtered heap scan
// compiles to the fused vectorized path (kernel + zone-map pruning
// behind a batch→Volcano adapter) unless the kernel is disabled; index
// scans and the boxed reference path keep the scalar pipeline.
func (s *scanPlan) build() (operators.Iterator, error) {
	var it operators.Iterator
	if s.indexCol != "" {
		idx, _ := s.table.Index(s.indexCol)
		it = operators.NewIndexScan(s.reader, idx, s.indexLo, s.indexHi)
	} else if len(s.preds) > 0 && !s.noKernel {
		k, err := s.filterKernel()
		if err != nil {
			return nil, err
		}
		bs := operators.NewBatchHeapScan(s.reader)
		bs.Kernel = k
		return operators.NewIteratorFromBatch(bs), nil
	} else {
		it = operators.NewHeapScan(s.reader)
	}
	if len(s.preds) > 0 {
		pred, err := compilePreds(s.sch, s.preds)
		if err != nil {
			return nil, err
		}
		it = operators.NewFilter(it, pred)
	}
	return it, nil
}

// filterKernel lazily compiles the scan's pushed-down conjunction into
// a shared FilterKernel. Called from single-threaded plan/build code
// before any pipeline fans out; the kernel itself is then
// worker-shared. Conjuncts the kernel cannot cover stay behind the
// boxed residual predicate, preserving exact semantics.
func (s *scanPlan) filterKernel() (*operators.FilterKernel, error) {
	if s.kern != nil {
		return s.kern, nil
	}
	cols, residual, err := compileKernelPreds(s.sch, s.preds)
	if err != nil {
		return nil, err
	}
	var boxed operators.Predicate
	if len(residual) > 0 {
		if boxed, err = compilePreds(s.sch, residual); err != nil {
			return nil, err
		}
	}
	s.scanStats = &operators.ScanStats{}
	s.kern = operators.NewFilterKernel(cols, boxed, s.scanStats)
	s.kernBoxed = residual
	return s.kern, nil
}

// kernelOps maps the comparison grammar onto kernel operators.
var kernelOps = map[CmpOp]operators.KernelOp{
	OpEQ: operators.KernEQ, OpNE: operators.KernNE,
	OpLT: operators.KernLT, OpGT: operators.KernGT,
	OpLE: operators.KernLE, OpGE: operators.KernGE,
	OpIsNull: operators.KernIsNull, OpNotNull: operators.KernNotNull,
}

// compileKernelPreds splits a conjunction into kernel-compilable
// column predicates and a boxed residual. The current grammar (col op
// literal, col IS [NOT] NULL) compiles entirely; the residual path
// exists so richer predicates can join the conjunction without
// touching the kernel.
func compileKernelPreds(sch schema, preds []Pred) ([]operators.ColPred, []Pred, error) {
	var cols []operators.ColPred
	var residual []Pred
	for _, p := range preds {
		i, err := sch.resolve(p.Col)
		if err != nil {
			return nil, nil, err
		}
		op, ok := kernelOps[p.Op]
		if !ok {
			residual = append(residual, p)
			continue
		}
		cols = append(cols, operators.ColPred{Col: i, Op: op, Lit: p.Lit, Name: p.String(), Cost: 1})
	}
	return cols, residual, nil
}

// filterSummary renders the scan's filter strategy for EXPLAIN: the
// prune counters plus each conjunct, tagged kernel or boxed. Empty for
// unfiltered or index-served scans.
func (s *scanPlan) filterSummary() string {
	if len(s.preds) == 0 || s.indexCol != "" {
		return ""
	}
	if s.kern == nil {
		names := make([]string, len(s.preds))
		for i, p := range s.preds {
			names[i] = p.String()
		}
		return fmt.Sprintf("filter(%s): boxed[%s]", s.ref.Binding(), strings.Join(names, " AND "))
	}
	out := fmt.Sprintf("filter(%s): %s %s", s.ref.Binding(), s.kern.PruneSummary(), s.kern.Describe())
	if len(s.kernBoxed) > 0 {
		names := make([]string, len(s.kernBoxed))
		for i, p := range s.kernBoxed {
			names[i] = p.String()
		}
		out += fmt.Sprintf(" boxed[%s]", strings.Join(names, " AND "))
	}
	return out
}

// compilePreds compiles a conjunction into a boxed tuple predicate —
// the reference semantics the vectorized kernel must reproduce
// byte-for-byte. NULL column values fail every conjunct except an
// explicit IS NULL test.
func compilePreds(sch schema, preds []Pred) (operators.Predicate, error) {
	type cp struct {
		idx int
		op  CmpOp
		lit storage.Value
	}
	var cps []cp
	for _, p := range preds {
		i, err := sch.resolve(p.Col)
		if err != nil {
			return nil, err
		}
		cps = append(cps, cp{idx: i, op: p.Op, lit: p.Lit})
	}
	return func(t storage.Tuple) bool {
		for _, c := range cps {
			switch c.op {
			case OpIsNull:
				if !t[c.idx].IsNull() {
					return false
				}
				continue
			case OpNotNull:
				if t[c.idx].IsNull() {
					return false
				}
				continue
			}
			if t[c.idx].IsNull() {
				return false
			}
			if !c.op.Eval(storage.Compare(t[c.idx], c.lit)) {
				return false
			}
		}
		return true
	}, nil
}

// estimate computes the optimiser's cardinality guess for a scan from
// the (possibly stale) statistics, read via snapshot so planning can
// race Analyze/SetStats without tearing.
func estimate(t *Table, preds []Pred) float64 {
	stats := t.StatsSnapshot()
	rows := float64(stats.Rows)
	if rows <= 0 {
		rows = 1 // unknown table: optimistic, per Scenario 3's setup
	}
	sel := 1.0
	for _, p := range preds {
		switch p.Op {
		case OpEQ:
			d := stats.Distinct[strings.ToLower(p.Col.Col)]
			if d <= 0 {
				d = 10
			}
			sel *= 1 / float64(d)
		case OpNE:
			// barely selective
		default:
			sel *= 1.0 / 3
		}
	}
	est := rows * sel
	if est < 1 {
		est = 1
	}
	return est
}

// JoinOrder selects the planner's join-ordering strategy.
type JoinOrder int

// Join-ordering strategies.
const (
	// JoinOrderGreedy (the default) orders joins greedily: start from
	// the smallest estimated scan, repeatedly attach the connected
	// neighbour with the cheapest estimated join output.
	JoinOrderGreedy JoinOrder = iota
	// JoinOrderDeclared compiles joins in FROM-clause declaration
	// order — the mis-ordered baseline for benchmarks and debugging.
	JoinOrderDeclared
)

// joinEdge is one resolved ON equality linking two scans. Scan
// indices refer to the plan's (join-ordered) scan list once planning
// has finished.
type joinEdge struct {
	a, b       int // scan indices
	aCol, bCol int // join-column positions local to each scan's schema
}

// stepFilter is a residual ON equality applied once both columns are
// present in the joined prefix; positions index the cumulative
// join-order tuple.
type stepFilter struct{ a, b int }

// joinStep attaches scans[i+1] to the joined prefix scans[0..i].
type joinStep struct {
	// leftCol is the hash-join column's position in the cumulative
	// prefix tuple; rightCol is local to the attached scan.
	leftCol  int
	rightCol int
	// buildLeft records whether the prefix side is the hash-build side.
	buildLeft bool
	// cross marks a cartesian attach: no ON edge connects the scan to
	// the prefix (last resort for disconnected join graphs).
	cross bool
	// estOut is the estimated prefix cardinality after this step.
	estOut float64
	// filters are residual ON equalities checked at this level.
	filters []stepFilter
}

// selectPlan is the compiled plan of a SelectStmt. Scans are held in
// join order (greedy or declared); sch stays in declaration order, and
// outPerm maps the join-order tuple back to it.
type selectPlan struct {
	scans []*scanPlan // in join order: scans[0] ⋈ scans[1] ⋈ ...
	steps []joinStep  // steps[i] attaches scans[i+1]
	edges []joinEdge  // resolved ON equalities (join-order index space)
	sch   schema      // declaration-order output schema
	// outPerm[d] is the join-order position of declaration column d;
	// nil when join order equals declaration order.
	outPerm   []int
	stmt      *SelectStmt
	explainTx string
}

// Explain returns the plan rendering (tests assert on it).
func (p *selectPlan) Explain() string { return p.explainTx }

// hasCross reports whether any step is a cartesian attach.
func (p *selectPlan) hasCross() bool {
	for _, st := range p.steps {
		if st.cross {
			return true
		}
	}
	return false
}

// planSelect compiles and optimises a SELECT statement with greedy
// join ordering. A non-nil txn binds every scan to that transaction's
// snapshot.
func (e *Engine) planSelect(st *SelectStmt, txn *storage.Txn) (*selectPlan, error) {
	return e.planSelectOrder(st, txn, JoinOrderGreedy)
}

// planSelectOrder compiles and optimises a SELECT statement:
// single-table predicates are pushed to their scans (resolved against
// the full join schema, so cross-table ambiguity is an error, never a
// silent first-scan bind); each scan picks an index path when its
// predicates cover an indexed column; joins are ordered per mode and
// each picks its hash-build side by estimated cardinality.
func (e *Engine) planSelectOrder(st *SelectStmt, txn *storage.Txn, mode JoinOrder) (*selectPlan, error) {
	refs := []TableRef{st.From}
	for _, j := range st.Joins {
		refs = append(refs, j.Table)
	}
	p := &selectPlan{stmt: st}
	var full schema
	scans := make([]*scanPlan, 0, len(refs))
	for i, ref := range refs {
		for _, prev := range scans {
			if strings.EqualFold(prev.ref.Binding(), ref.Binding()) {
				return nil, fmt.Errorf("query: duplicate table binding %q (alias each occurrence)", ref.Binding())
			}
		}
		t, err := e.cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		var reader storage.HeapReader = t.Heap
		if txn != nil {
			reader = txn.View(t.Heap)
		}
		sp := &scanPlan{ref: ref, table: t, sch: tableSchema(ref.Binding(), t), reader: reader, declPos: i}
		scans = append(scans, sp)
		full = append(full, sp.sch...)
	}
	p.sch = full

	// Declaration-order column offsets, for mapping full-schema
	// positions back to their owning scan.
	declOff := make([]int, len(scans))
	for i := 1; i < len(scans); i++ {
		declOff[i] = declOff[i-1] + len(scans[i-1].sch)
	}
	owner := func(global int) (int, int) {
		for i := len(scans) - 1; i >= 0; i-- {
			if global >= declOff[i] {
				return i, global - declOff[i]
			}
		}
		return 0, global
	}

	// Predicate pushdown: each WHERE conjunct references one column,
	// hence one table — but it must resolve against the full join
	// schema first, so a name present in two joined tables reports
	// ambiguity instead of silently binding to the first scan.
	for _, pred := range st.Where {
		global, err := full.resolve(pred.Col)
		if err != nil {
			return nil, err
		}
		si, _ := owner(global)
		scans[si].preds = append(scans[si].preds, pred)
	}

	// Access-path selection + estimation.
	for _, sp := range scans {
		sp.stats = sp.table.StatsSnapshot()
		sp.estRows = estimate(sp.table, sp.preds)
		for _, pred := range sp.preds {
			if _, ok := sp.table.Index(pred.Col.Col); !ok {
				continue
			}
			switch pred.Op {
			case OpEQ:
				sp.indexCol, sp.indexLo, sp.indexHi = strings.ToLower(pred.Col.Col), pred.Lit, pred.Lit
			case OpGT, OpGE:
				sp.indexCol, sp.indexLo, sp.indexHi = strings.ToLower(pred.Col.Col), pred.Lit, storage.StringValue(string(rune(0x10FFFF)))
			case OpLT, OpLE:
				sp.indexCol, sp.indexLo, sp.indexHi = strings.ToLower(pred.Col.Col), storage.NullValue(), pred.Lit
			}
			if sp.indexCol != "" {
				break
			}
		}
	}

	// Resolve each ON equality to a (scan, column) pair per side.
	// Resolution is against the full schema, so the clause may
	// reference any earlier (or later) binding and unqualified
	// ambiguity is caught here.
	edges := make([]joinEdge, 0, len(st.Joins))
	for _, j := range st.Joins {
		gl, err := full.resolve(j.LCol)
		if err != nil {
			return nil, err
		}
		gr, err := full.resolve(j.RCol)
		if err != nil {
			return nil, err
		}
		sa, ca := owner(gl)
		sb, cb := owner(gr)
		if sa == sb {
			return nil, fmt.Errorf("query: join %s = %s does not span two tables", j.LCol, j.RCol)
		}
		edges = append(edges, joinEdge{a: sa, b: sb, aCol: ca, bCol: cb})
	}

	// Join ordering (declaration-order index space), then re-index the
	// scans and edges into join-order space.
	var order []int
	if mode == JoinOrderDeclared || len(scans) <= 2 && mode != JoinOrderGreedy {
		order = identityOrder(len(scans))
	} else {
		order = greedyJoinOrder(scans, edges, buildAdjacency(len(scans), edges))
	}
	joinIdx := make([]int, len(scans)) // decl idx -> join idx
	p.scans = make([]*scanPlan, len(scans))
	for ji, di := range order {
		p.scans[ji] = scans[di]
		joinIdx[di] = ji
	}
	p.edges = edges
	for i := range p.edges {
		p.edges[i].a = joinIdx[p.edges[i].a]
		p.edges[i].b = joinIdx[p.edges[i].b]
	}

	p.steps = deriveSteps(p.scans, p.edges)
	p.outPerm = declPermutation(p.scans)

	// Explain text: the chosen join order with build sides and
	// per-scan/per-join estimates.
	parts := make([]string, 0, 2*len(p.scans))
	parts = append(parts, p.scans[0].explain())
	for i, stp := range p.steps {
		parts = append(parts, stp.explain(), p.scans[i+1].explain())
	}
	p.explainTx = strings.Join(parts, " -> ")
	return p, nil
}

// explain renders one join step.
func (s joinStep) explain() string {
	if s.cross {
		return fmt.Sprintf("CrossJoin(est=%.0f)", s.estOut)
	}
	side := "right"
	if s.buildLeft {
		side = "left"
	}
	if len(s.filters) > 0 {
		return fmt.Sprintf("HashJoin(build=%s est=%.0f filters=%d)", side, s.estOut, len(s.filters))
	}
	return fmt.Sprintf("HashJoin(build=%s est=%.0f)", side, s.estOut)
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// buildAdjacency indexes edges by scan: adj[s] lists the edge indices
// touching scan s.
func buildAdjacency(n int, edges []joinEdge) [][]int {
	adj := make([][]int, n)
	for ei, ed := range edges {
		adj[ed.a] = append(adj[ed.a], ei)
		adj[ed.b] = append(adj[ed.b], ei)
	}
	return adj
}

// attachEst estimates the intermediate cardinality after attaching
// scan cand to the already-joined prefix: every ON equality linking
// cand to a prefix scan contributes 1/max(V(l), V(r)) selectivity
// (V = distinct count from the statistics snapshot, defaulting to 10
// when absent — the statistics-free fallback). The bool reports
// whether cand is connected to the prefix at all; when it is not, the
// returned estimate is the cartesian product. Shared by plan-time
// greedy ordering and the runtime routing decision, so both rank
// candidates identically.
func attachEst(curEst, candEst float64, cand int, scans []*scanPlan,
	edges []joinEdge, adj [][]int, inPrefix []bool) (float64, bool) {
	out := curEst * candEst
	connected := false
	for _, ei := range adj[cand] {
		ed := edges[ei]
		other, myCol, otherCol := ed.b, ed.aCol, ed.bCol
		if other == cand {
			other, myCol, otherCol = ed.a, ed.bCol, ed.aCol
		}
		if !inPrefix[other] {
			continue
		}
		connected = true
		d := scans[cand].distinctOn(myCol)
		if od := scans[other].distinctOn(otherCol); od > d {
			d = od
		}
		if d <= 0 {
			d = 10
		}
		out /= float64(d)
	}
	if out < 1 {
		out = 1
	}
	return out, connected
}

// joinIndexAvailable reports whether cand has a B-tree index on one of
// the join columns linking it to the prefix — a mild greedy preference
// (the index is an index-NL escape hatch for the runtime adapter and a
// sign the column is a key).
func joinIndexAvailable(cand int, scans []*scanPlan, edges []joinEdge,
	adj [][]int, inPrefix []bool) bool {
	for _, ei := range adj[cand] {
		ed := edges[ei]
		other, myCol := ed.b, ed.aCol
		if other == cand {
			other, myCol = ed.a, ed.bCol
		}
		if !inPrefix[other] {
			continue
		}
		if _, ok := scans[cand].table.Index(scans[cand].sch[myCol].Name); ok {
			return true
		}
	}
	return false
}

// greedyJoinOrder is the statistics-free greedy ordering: seed with
// the smallest estimated scan, then repeatedly attach the connected
// candidate with the cheapest estimated join output (index
// availability on the join column breaks near-ties). Cartesian
// attaches happen only when no remaining scan is connected. The loop
// is O(n² + n·e) with no maps and no per-iteration allocation.
func greedyJoinOrder(scans []*scanPlan, edges []joinEdge, adj [][]int) []int {
	n := len(scans)
	order := make([]int, 0, n)
	chosen := make([]bool, n)
	start := 0
	for i := 1; i < n; i++ {
		if scans[i].estRows < scans[start].estRows {
			start = i
		}
	}
	order = append(order, start)
	chosen[start] = true
	curEst := scans[start].estRows
	for len(order) < n {
		best := -1
		var bestCost, bestOut float64
		for c := 0; c < n; c++ {
			if chosen[c] {
				continue
			}
			out, conn := attachEst(curEst, scans[c].estRows, c, scans, edges, adj, chosen)
			if !conn {
				continue
			}
			cost := out
			if joinIndexAvailable(c, scans, edges, adj, chosen) {
				cost *= 0.9
			}
			if best < 0 || cost < bestCost ||
				(cost == bestCost && scans[c].estRows < scans[best].estRows) {
				best, bestCost, bestOut = c, cost, out
			}
		}
		if best < 0 {
			// Disconnected join graph: cartesian last resort, smallest
			// estimated scan first to keep the product cheap.
			for c := 0; c < n; c++ {
				if chosen[c] && best >= 0 {
					continue
				}
				if !chosen[c] && (best < 0 || scans[c].estRows < scans[best].estRows) {
					best = c
				}
			}
			bestOut = curEst * scans[best].estRows
		}
		chosen[best] = true
		order = append(order, best)
		curEst = bestOut
	}
	return order
}

// deriveSteps compiles the ordered scan list + edges into left-deep
// join steps: the first unused edge (in ON-clause order) linking the
// attached scan to the prefix becomes the hash condition; every other
// edge becomes a residual equality filter at the first level where
// both its columns exist; a scan with no edge to the prefix attaches
// cartesian.
func deriveSteps(scans []*scanPlan, edges []joinEdge) []joinStep {
	n := len(scans)
	if n <= 1 {
		return nil
	}
	off := make([]int, n)
	for i := 1; i < n; i++ {
		off[i] = off[i-1] + len(scans[i-1].sch)
	}
	adj := buildAdjacency(n, edges)
	used := make([]bool, len(edges))
	inPrefix := make([]bool, n)
	inPrefix[0] = true
	steps := make([]joinStep, 0, n-1)
	curEst := scans[0].estRows
	for i := 1; i < n; i++ {
		st := joinStep{cross: true}
		for ei, ed := range edges {
			if used[ei] {
				continue
			}
			var other, myCol, otherCol int
			switch {
			case ed.a == i && inPrefix[ed.b]:
				other, myCol, otherCol = ed.b, ed.aCol, ed.bCol
			case ed.b == i && inPrefix[ed.a]:
				other, myCol, otherCol = ed.a, ed.bCol, ed.aCol
			default:
				continue
			}
			st.cross = false
			st.leftCol = off[other] + otherCol
			st.rightCol = myCol
			used[ei] = true
			break
		}
		out, _ := attachEst(curEst, scans[i].estRows, i, scans, edges, adj, inPrefix)
		st.estOut = out
		st.buildLeft = curEst <= scans[i].estRows
		inPrefix[i] = true
		for ei, ed := range edges {
			if used[ei] || !inPrefix[ed.a] || !inPrefix[ed.b] {
				continue
			}
			used[ei] = true
			st.filters = append(st.filters, stepFilter{a: off[ed.a] + ed.aCol, b: off[ed.b] + ed.bCol})
		}
		curEst = out
		steps = append(steps, st)
	}
	return steps
}

// declPermutation computes the join-order → declaration-order output
// permutation (nil when the orders coincide).
func declPermutation(scans []*scanPlan) []int {
	n := len(scans)
	declToJoin := make([]int, n)
	identity := true
	width := 0
	for ji, sp := range scans {
		declToJoin[sp.declPos] = ji
		identity = identity && sp.declPos == ji
		width += len(sp.sch)
	}
	if identity {
		return nil
	}
	off := make([]int, n)
	for i := 1; i < n; i++ {
		off[i] = off[i-1] + len(scans[i-1].sch)
	}
	perm := make([]int, 0, width)
	for d := 0; d < n; d++ {
		ji := declToJoin[d]
		for k := 0; k < len(scans[ji].sch); k++ {
			perm = append(perm, off[ji]+k)
		}
	}
	return perm
}

// toDecl wraps an iterator producing join-order tuples into
// declaration order.
func (p *selectPlan) toDecl(it operators.Iterator) operators.Iterator {
	if p.outPerm == nil {
		return it
	}
	return operators.NewProject(it, p.outPerm)
}

// permuteToDecl permutes materialised join-order rows to declaration
// order in place (the parallel pipeline's rows are arena-carved by
// this executor and aliased by no one else, so mutation is safe).
func permuteToDecl(rows []storage.Tuple, perm []int) []storage.Tuple {
	if perm == nil {
		return rows
	}
	scratch := make(storage.Tuple, len(perm))
	for _, t := range rows {
		copy(scratch, t)
		for i, p := range perm {
			t[i] = scratch[p]
		}
	}
	return rows
}

// stepFilterPred compiles residual ON equalities into a tuple
// predicate (null-rejecting, like the hash condition).
func stepFilterPred(fs []stepFilter) operators.Predicate {
	return func(t storage.Tuple) bool {
		for _, f := range fs {
			av, bv := t[f.a], t[f.b]
			if av.IsNull() || bv.IsNull() || !storage.Equal(av, bv) {
				return false
			}
		}
		return true
	}
}

// buildJoinTree compiles the joins into an iterator producing tuples
// in declaration-order schema no matter which sides build or how the
// joins were ordered.
func (p *selectPlan) buildJoinTree() (operators.Iterator, error) {
	left, err := p.scans[0].build()
	if err != nil {
		return nil, err
	}
	width := len(p.scans[0].sch)
	for i, st := range p.steps {
		right, err := p.scans[i+1].build()
		if err != nil {
			return nil, err
		}
		rw := len(p.scans[i+1].sch)
		switch {
		case st.cross:
			left = operators.NewCrossJoin(left, right)
		case st.buildLeft:
			// build = prefix, probe = scan → output (prefix, scan): as-is.
			left = operators.NewHashJoin(left, right, st.leftCol, st.rightCol)
		default:
			// build = scan, probe = prefix → output (scan, prefix):
			// re-project to prefix-first order.
			j := operators.NewHashJoin(right, left, st.rightCol, st.leftCol)
			perm := make([]int, 0, width+rw)
			for k := 0; k < width; k++ {
				perm = append(perm, rw+k)
			}
			for k := 0; k < rw; k++ {
				perm = append(perm, k)
			}
			left = operators.NewProject(j, perm)
		}
		width += rw
		if len(st.filters) > 0 {
			left = operators.NewFilter(left, stepFilterPred(st.filters))
		}
	}
	return p.toDecl(left), nil
}

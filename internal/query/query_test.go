package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	return NewEngine(NewCatalog(256), trace.New(), nil)
}

func seedShop(t *testing.T, e *Engine) {
	t.Helper()
	e.MustExec("CREATE TABLE users (id INT, name STRING, city STRING, age INT)")
	e.MustExec("CREATE TABLE orders (id INT, user_id INT, total FLOAT)")
	for i := 0; i < 50; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO users VALUES (%d, 'user%d', '%s', %d)",
			i, i, []string{"london", "paris", "tokyo"}[i%3], 20+i%40))
	}
	for i := 0; i < 200; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d.5)", i, i%50, i))
	}
	e.MustExec("ANALYZE users")
	e.MustExec("ANALYZE orders")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE",
		"SELECT FROM t",
		"SELECT * t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE x ~ 1",
		"SELECT * FROM t LIMIT x",
		"SELECT SUM(*) FROM t",
		"INSERT t VALUES (1)",
		"INSERT INTO t VALUES 1",
		"UPDATE t SET",
		"DELETE t",
		"CREATE VIEW v",
		"CREATE TABLE t (x BANANA)",
		"SELECT * FROM t; garbage",
		"SELECT * FROM t WHERE s = 'unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestParseSelectShape(t *testing.T) {
	st := MustParse(`SELECT u.name, COUNT(*), SUM(o.total) FROM users u
		JOIN orders o ON u.id = o.user_id
		WHERE u.age > 30 AND u.city = 'london'
		GROUP BY u.name ORDER BY u.name DESC LIMIT 10`).(*SelectStmt)
	if len(st.Items) != 3 || st.Items[1].AggStar || st.Items[1].Agg != AggCount {
		// COUNT(*) has AggStar = true
		if !st.Items[1].AggStar {
			t.Fatalf("items = %+v", st.Items)
		}
	}
	if st.From.Alias != "u" || len(st.Joins) != 1 || st.Joins[0].Table.Alias != "o" {
		t.Fatalf("from/joins = %+v %+v", st.From, st.Joins)
	}
	if len(st.Where) != 2 || st.Where[0].Op != OpGT || st.Where[1].Lit.Str != "london" {
		t.Fatalf("where = %+v", st.Where)
	}
	if st.GroupBy == nil || st.OrderBy == nil || !st.Desc || st.Limit != 10 {
		t.Fatalf("tail clauses: %+v", st)
	}
}

func TestParseLiteralsAndEscapes(t *testing.T) {
	st := MustParse(`INSERT INTO t VALUES (1, -2, 3.5, 'it''s', TRUE, NULL)`).(*InsertStmt)
	row := st.Rows[0]
	if row[0].Int != 1 || row[1].Int != -2 || row[2].Float != 3.5 ||
		row[3].Str != "it's" || !row[4].Bool || !row[5].IsNull() {
		t.Fatalf("row = %v", row)
	}
}

func TestCreateInsertSelect(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	res := e.MustExec("SELECT name, age FROM users WHERE city = 'london' AND age > 50")
	if len(res.Cols) != 2 || res.Cols[0] != "name" {
		t.Fatalf("cols = %v", res.Cols)
	}
	for _, r := range res.Rows {
		if r[1].Int <= 50 {
			t.Fatalf("predicate violated: %v", r)
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestSelectStar(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	res := e.MustExec("SELECT * FROM users LIMIT 3")
	if len(res.Rows) != 3 || len(res.Cols) != 4 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Cols)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	res := e.MustExec("SELECT id FROM users ORDER BY id DESC LIMIT 5")
	want := []int64{49, 48, 47, 46, 45}
	for i, r := range res.Rows {
		if r[0].Int != want[i] {
			t.Fatalf("rows = %v", res.Rows)
		}
	}
}

func TestJoinQuery(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	res := e.MustExec(`SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.user_id WHERE u.id = 7`)
	if len(res.Rows) != 4 { // orders 7, 57, 107, 157
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[0].Str != "user7" {
			t.Fatalf("row = %v", r)
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	res := e.MustExec("SELECT city, COUNT(*), AVG(age) FROM users GROUP BY city ORDER BY city")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "london" {
		t.Fatalf("order = %v", res.Rows)
	}
	total := int64(0)
	for _, r := range res.Rows {
		total += r[1].Int
	}
	if total != 50 {
		t.Fatalf("counts sum to %d", total)
	}
	if res.Cols[1] != "count(*)" || res.Cols[2] != "avg(age)" {
		t.Fatalf("cols = %v", res.Cols)
	}
}

func TestGlobalAggregate(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	res := e.MustExec("SELECT COUNT(*), SUM(total), MIN(total), MAX(total) FROM orders")
	r := res.Rows[0]
	if r[0].Int != 200 {
		t.Fatalf("count = %v", r)
	}
	// sum of (i + 0.5) for i in 0..199 = 19900 + 100 = 20000.
	if r[1].Float != 20000 {
		t.Fatalf("sum = %v", r[1])
	}
	if r[2].Float != 0.5 || r[3].Float != 199.5 {
		t.Fatalf("min/max = %v %v", r[2], r[3])
	}
}

func TestAggregateErrors(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	if _, err := e.Exec("SELECT name, COUNT(*) FROM users"); err == nil {
		t.Fatal("non-grouped column must error")
	}
	if _, err := e.Exec("SELECT *, COUNT(*) FROM users"); err == nil {
		t.Fatal("star with aggregate must error")
	}
}

func TestUpdateDelete(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	res := e.MustExec("UPDATE users SET city = 'berlin' WHERE city = 'tokyo'")
	if res.Affected == 0 {
		t.Fatal("nothing updated")
	}
	if n := len(e.MustExec("SELECT id FROM users WHERE city = 'tokyo'").Rows); n != 0 {
		t.Fatalf("tokyo rows = %d", n)
	}
	res = e.MustExec("DELETE FROM users WHERE city = 'berlin'")
	if res.Affected == 0 {
		t.Fatal("nothing deleted")
	}
	if n := len(e.MustExec("SELECT id FROM users").Rows); n != 50-res.Affected {
		t.Fatalf("rows = %d", n)
	}
}

func TestIndexPathChosenAndCorrect(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	noIdx := e.MustExec("SELECT id FROM users WHERE id = 7")
	if !strings.Contains(noIdx.Plan, "SeqScan") {
		t.Fatalf("plan = %s", noIdx.Plan)
	}
	e.MustExec("CREATE INDEX ON users (id)")
	withIdx := e.MustExec("SELECT id FROM users WHERE id = 7")
	if !strings.Contains(withIdx.Plan, "IndexScan") {
		t.Fatalf("plan = %s", withIdx.Plan)
	}
	if len(noIdx.Rows) != len(withIdx.Rows) || len(withIdx.Rows) != 1 {
		t.Fatalf("index path changed results: %d vs %d", len(noIdx.Rows), len(withIdx.Rows))
	}
	// Range predicate via index keeps strictness (residual filter).
	r := e.MustExec("SELECT id FROM users WHERE id > 47")
	if len(r.Rows) != 2 {
		t.Fatalf("range rows = %v", r.Rows)
	}
}

func TestIndexMaintenanceThroughDML(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	e.MustExec("CREATE INDEX ON users (city)")
	e.MustExec("UPDATE users SET city = 'rome' WHERE id = 0")
	res := e.MustExec("SELECT id FROM users WHERE city = 'rome'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 0 {
		t.Fatalf("rows = %v (plan %s)", res.Rows, res.Plan)
	}
	e.MustExec("DELETE FROM users WHERE id = 0")
	if n := len(e.MustExec("SELECT id FROM users WHERE city = 'rome'").Rows); n != 0 {
		t.Fatalf("deleted row still indexed: %d", n)
	}
}

func TestBuildSideChoiceFollowsStats(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	// users=50, orders=200 (analyzed): greedy seeds at users, and the
	// seed (being the smaller side) hash-builds.
	res := e.MustExec("SELECT u.id FROM users u JOIN orders o ON u.id = o.user_id")
	if !strings.HasPrefix(res.Plan, "SeqScan(u ") || !strings.Contains(res.Plan, "HashJoin(build=left") {
		t.Fatalf("plan = %s", res.Plan)
	}
	// Lie about users being huge: greedy re-seeds at orders — the join
	// order flips, and the new seed builds.
	if err := e.cat.SetStats("users", TableStats{Rows: 1_000_000, Distinct: map[string]int{"id": 1_000_000}}); err != nil {
		t.Fatal(err)
	}
	res = e.MustExec("SELECT u.id FROM users u JOIN orders o ON u.id = o.user_id")
	if !strings.HasPrefix(res.Plan, "SeqScan(o ") || !strings.Contains(res.Plan, "HashJoin(build=left") {
		t.Fatalf("plan = %s", res.Plan)
	}
}

func TestTypeErrors(t *testing.T) {
	e := newEngine(t)
	e.MustExec("CREATE TABLE t (a INT, b STRING)")
	if _, err := e.Exec("INSERT INTO t VALUES ('x', 'y')"); !errors.Is(err, ErrType) {
		t.Fatalf("got %v", err)
	}
	if _, err := e.Exec("INSERT INTO t VALUES (1)"); !errors.Is(err, ErrArity) {
		t.Fatalf("got %v", err)
	}
	if _, err := e.Exec("SELECT zz FROM t"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("got %v", err)
	}
	if _, err := e.Exec("SELECT a FROM nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("got %v", err)
	}
	if _, err := e.Exec("CREATE TABLE t (a INT)"); !errors.Is(err, ErrTableExists) {
		t.Fatalf("got %v", err)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := newEngine(t)
	e.MustExec("CREATE TABLE a (id INT)")
	e.MustExec("CREATE TABLE b (id INT)")
	if _, err := e.Exec("SELECT id FROM a JOIN b ON a.id = b.id"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("got %v", err)
	}
}

func TestThreeWayJoin(t *testing.T) {
	e := newEngine(t)
	e.MustExec("CREATE TABLE a (x INT)")
	e.MustExec("CREATE TABLE b (x INT, y INT)")
	e.MustExec("CREATE TABLE c (y INT)")
	for i := 0; i < 5; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO a VALUES (%d)", i))
		e.MustExec(fmt.Sprintf("INSERT INTO b VALUES (%d, %d)", i, i*10))
		e.MustExec(fmt.Sprintf("INSERT INTO c VALUES (%d)", i*10))
	}
	res := e.MustExec("SELECT a.x, c.y FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y ORDER BY a.x")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, r := range res.Rows {
		if r[0].Int != int64(i) || r[1].Int != int64(i*10) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

// --------------------------------------------------------------------------
// Scenario 3: mid-query re-optimisation.

// scenario3Engine builds the misestimate setup: stale stats claim
// `big` has 10 rows when it actually has 2000; `small` is honest at
// 100 rows.
func scenario3Engine(t *testing.T) *Engine {
	t.Helper()
	e := newEngine(t)
	e.MustExec("CREATE TABLE big (k INT, pad STRING)")
	e.MustExec("CREATE TABLE small (k INT, v INT)")
	for i := 0; i < 2000; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO big VALUES (%d, 'xxxxxxxx')", i%100))
	}
	for i := 0; i < 100; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO small VALUES (%d, %d)", i, i))
	}
	e.MustExec("ANALYZE small")
	// Stale statistics: the optimiser believes big is tiny.
	if err := e.cat.SetStats("big", TableStats{Rows: 10, Distinct: map[string]int{"k": 10}}); err != nil {
		t.Fatal(err)
	}
	return e
}

const scenario3SQL = "SELECT big.k, small.v FROM big JOIN small ON big.k = small.k"

func TestAdaptiveExecDetectsMisestimateAndSwaps(t *testing.T) {
	e := scenario3Engine(t)
	st := MustParse(scenario3SQL).(*SelectStmt)

	// Static plan builds on `big` (est 10 rows < 100).
	static := e.MustExec(scenario3SQL)
	if !strings.Contains(static.Plan, "HashJoin(build=left") {
		t.Fatalf("static plan = %s", static.Plan)
	}

	res, rep, err := e.ExecSelectAdaptive(st, AdaptiveConfig{Theta: 3, CheckEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replanned {
		t.Fatalf("report = %+v", rep)
	}
	if rep.InitialBuild != "big" || rep.FinalBuild != "small" {
		t.Fatalf("builds: %s -> %s", rep.InitialBuild, rep.FinalBuild)
	}
	if rep.TriggerRow > 64 { // θ·est = 30, CheckEvery 32 → trigger at 32
		t.Fatalf("trigger row = %d, want early detection", rep.TriggerRow)
	}
	// Results identical to the static plan.
	if len(res.Rows) != len(static.Rows) {
		t.Fatalf("adaptive %d rows vs static %d", len(res.Rows), len(static.Rows))
	}
	key := func(r storage.Tuple) string { return r[0].String() + "|" + r[1].String() }
	a, b := make([]string, 0), make([]string, 0)
	for _, r := range res.Rows {
		a = append(a, key(r))
	}
	for _, r := range static.Rows {
		b = append(b, key(r))
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row mismatch at %d: %s vs %s", i, a[i], b[i])
		}
	}
	// Peak memory far below materialising all of big.
	if rep.PeakHashRows >= 1000 {
		t.Fatalf("peak hash rows = %d, adaptation saved nothing", rep.PeakHashRows)
	}
	// Trace records the loop: safepoint → violation → reoptimize.
	log := e.log
	if log.Count(trace.KindViolation) == 0 || log.Count(trace.KindReoptimize) == 0 ||
		log.Count(trace.KindSafePoint) == 0 {
		t.Fatalf("trace = %s", log.Summary())
	}
}

func TestAdaptiveExecNoViolationStaysPut(t *testing.T) {
	e := scenario3Engine(t)
	e.MustExec("ANALYZE big") // honest stats: no violation
	st := MustParse(scenario3SQL).(*SelectStmt)
	res, rep, err := e.ExecSelectAdaptive(st, DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replanned {
		t.Fatalf("replanned with honest stats: %+v", rep)
	}
	if len(res.Rows) != 2000 { // 2000 big rows × 1 small match each
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestAdaptiveExecIndexInjection(t *testing.T) {
	e := scenario3Engine(t)
	e.MustExec("CREATE INDEX ON small (k)")
	st := MustParse(scenario3SQL).(*SelectStmt)
	res, rep, err := e.ExecSelectAdaptive(st, AdaptiveConfig{Theta: 3, CheckEvery: 32, PreferIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replanned || !rep.UsedIndex {
		t.Fatalf("report = %+v", rep)
	}
	if len(res.Rows) != 2000 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestAdaptiveExecFallsBackForNonJoins(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	st := MustParse("SELECT id FROM users WHERE id < 5").(*SelectStmt)
	res, rep, err := e.ExecSelectAdaptive(st, DefaultAdaptiveConfig())
	if err != nil || rep.Replanned {
		t.Fatalf("%v %+v", err, rep)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

// Property: for random table contents, the adaptive executor returns
// exactly the static executor's result multiset, whether or not it
// replans.
func TestAdaptiveMatchesStaticProperty(t *testing.T) {
	f := func(seed int64, bigN, smallN uint8, lieRaw uint8) bool {
		e := NewEngine(NewCatalog(256), trace.New(), nil)
		e.MustExec("CREATE TABLE big (k INT)")
		e.MustExec("CREATE TABLE small (k INT)")
		bn := int(bigN)%300 + 1
		sn := int(smallN)%50 + 1
		for i := 0; i < bn; i++ {
			e.MustExec(fmt.Sprintf("INSERT INTO big VALUES (%d)", (seed+int64(i))%20))
		}
		for i := 0; i < sn; i++ {
			e.MustExec(fmt.Sprintf("INSERT INTO small VALUES (%d)", int64(i)%20))
		}
		e.MustExec("ANALYZE small")
		lie := int(lieRaw)%50 + 1
		_ = e.cat.SetStats("big", TableStats{Rows: lie, Distinct: map[string]int{"k": 20}})
		sql := "SELECT big.k, small.k FROM big JOIN small ON big.k = small.k"
		static := e.MustExec(sql)
		st := MustParse(sql).(*SelectStmt)
		adaptive, _, err := e.ExecSelectAdaptive(st, AdaptiveConfig{Theta: 2, CheckEvery: 8})
		if err != nil {
			return false
		}
		if len(static.Rows) != len(adaptive.Rows) {
			return false
		}
		cnt := map[string]int{}
		for _, r := range static.Rows {
			cnt[r[0].String()+"|"+r[1].String()]++
		}
		for _, r := range adaptive.Rows {
			cnt[r[0].String()+"|"+r[1].String()]--
		}
		for _, v := range cnt {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExplainStatement(t *testing.T) {
	e := newEngine(t)
	seedShop(t, e)
	res := e.MustExec("EXPLAIN SELECT u.id FROM users u JOIN orders o ON u.id = o.user_id WHERE u.id = 3")
	if len(res.Rows) != 1 || res.Cols[0] != "plan" {
		t.Fatalf("explain shape: %v %v", res.Cols, res.Rows)
	}
	plan := res.Rows[0][0].Str
	if !strings.Contains(plan, "SeqScan") || !strings.Contains(plan, "HashJoin") {
		t.Fatalf("plan = %q", plan)
	}
	// EXPLAIN must not execute: row counts unchanged afterwards.
	if _, err := e.Exec("EXPLAIN SELECT * FROM nope"); err == nil {
		t.Fatal("explain of bad query must error")
	}
}

// Vectorized-kernel differential tests: the compiled filter path
// (kernels + zone-map pruning) must return byte-identical results to
// the boxed reference path across worker counts, batch sizes, NULL /
// NaN / -0 data, snapshot transactions and crash recovery — plus the
// three-valued-logic matrix for WHERE over NULL columns on the
// serial, batch and morsel pipelines, and the EXPLAIN rendering.
package query

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/storage"
)

// kernelQueries is the differential workload: every operator, both
// column types the kernels specialise, IS [NOT] NULL, multi-conjunct
// orders the eddy rank may permute, and cross-kind comparisons.
var kernelQueries = []string{
	"SELECT a FROM hard WHERE a < 50",
	"SELECT a FROM hard WHERE a <= 0",
	"SELECT a, f FROM hard WHERE a = 7",
	"SELECT a FROM hard WHERE a != 7",
	"SELECT a FROM hard WHERE a >= 9000000000000000000",
	"SELECT f FROM hard WHERE f < 0.0",
	"SELECT f FROM hard WHERE f = 0.0",
	"SELECT f FROM hard WHERE f >= 2.5",
	"SELECT s FROM hard WHERE s < 'm'",
	"SELECT s FROM hard WHERE s = ''",
	"SELECT s FROM hard WHERE s != 'q'",
	"SELECT a FROM hard WHERE f IS NULL",
	"SELECT a FROM hard WHERE f IS NOT NULL",
	"SELECT a FROM hard WHERE s IS NULL AND a < 70",
	"SELECT a, f, s FROM hard WHERE a < 90 AND f >= 0.0 AND s != 'zz'",
	"SELECT a FROM hard WHERE a > 10 AND a < 90 AND f IS NOT NULL AND s IS NOT NULL",
	"SELECT a FROM hard WHERE s > 100",   // cross-kind: string col vs int lit
	"SELECT a FROM hard WHERE a < 'x'",   // cross-kind: int col vs string lit
	"SELECT a FROM hard WHERE f = TRUE",  // cross-kind: float col vs bool lit
	"SELECT a FROM hard WHERE a IS NULL", // never-null column
	"SELECT COUNT(*) FROM hard WHERE a < 25",
}

// seedHard populates `hard` with every value shape the kernels
// special-case: NULLs in each column, NaN, -0, +0, int values past
// 2^53 (where the float-image comparison loses precision), empty and
// high strings. Inserted through the catalog so NaN/-0 reach storage
// (SQL literals cannot spell them).
func seedHard(t *testing.T, e *Engine, rows int) {
	t.Helper()
	e.MustExec("CREATE TABLE hard (a INT, f FLOAT, s STRING)")
	for i := 0; i < rows; i++ {
		var a, f, s storage.Value
		switch i % 7 {
		case 0:
			a = storage.IntValue(int64(i % 100))
		case 1:
			a = storage.IntValue(-int64(i % 50))
		case 2:
			a = storage.IntValue(1<<53 + int64(i%3))
		default:
			a = storage.IntValue(int64(i % 100))
		}
		switch i % 5 {
		case 0:
			f = storage.FloatValue(math.NaN())
		case 1:
			f = storage.FloatValue(math.Copysign(0, -1))
		case 2:
			f = storage.NullValue()
		case 3:
			f = storage.FloatValue(float64(i) / 4)
		default:
			f = storage.FloatValue(0)
		}
		switch i % 4 {
		case 0:
			s = storage.StringValue(fmt.Sprintf("row-%03d", i%60))
		case 1:
			s = storage.NullValue()
		case 2:
			s = storage.StringValue("")
		default:
			s = storage.StringValue("zz")
		}
		if _, err := e.cat.Insert("hard", storage.Tuple{a, f, s}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.cat.Analyze("hard"); err != nil {
		t.Fatal(err)
	}
}

// TestKernelBoxedDeterminismMatrix is the acceptance matrix: for every
// query, the kernel and boxed paths must agree row-for-row at workers
// {1,4} × batch {1,64,1024}, and both must agree with the serial
// executor.
func TestKernelBoxedDeterminismMatrix(t *testing.T) {
	e := newEngine(t)
	seedHard(t, e, 700)
	for _, q := range kernelQueries {
		serial := rowsMultiset(e.MustExec(q))
		for _, workers := range []int{1, 4} {
			for _, batch := range []int{1, 64, 1024} {
				kres, _, err := e.ExecuteSQL(q, ExecOptions{Workers: workers, BatchSize: batch})
				if err != nil {
					t.Fatalf("%s kernel w=%d b=%d: %v", q, workers, batch, err)
				}
				bres, _, err := e.ExecuteSQL(q, ExecOptions{Workers: workers, BatchSize: batch, NoVectorKernels: true})
				if err != nil {
					t.Fatalf("%s boxed w=%d b=%d: %v", q, workers, batch, err)
				}
				km, bm := rowsMultiset(kres), rowsMultiset(bres)
				if fmt.Sprint(km) != fmt.Sprint(bm) {
					t.Fatalf("%s w=%d b=%d: kernel %v != boxed %v", q, workers, batch, km, bm)
				}
				if fmt.Sprint(km) != fmt.Sprint(serial) {
					t.Fatalf("%s w=%d b=%d: parallel %v != serial %v", q, workers, batch, km, serial)
				}
			}
		}
	}
}

// TestThreeValuedLogicMatrix: WHERE over NULL columns follows SQL 3VL
// (NULL fails every comparison, even !=; IS NULL is the only way to
// select it) identically on the serial iterator, the batch pipeline
// and the morsel source.
func TestThreeValuedLogicMatrix(t *testing.T) {
	e := newEngine(t)
	e.MustExec("CREATE TABLE n (k INT, v INT)")
	for i := 0; i < 30; i++ {
		v := storage.Value(storage.IntValue(int64(i % 5)))
		if i%3 == 0 {
			v = storage.NullValue()
		}
		if _, err := e.cat.Insert("n", storage.Tuple{storage.IntValue(int64(i)), v}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		where string
		want  int // hand-counted rows
	}{
		{"v = 2", 4},      // i%5==2 and i%3!=0: 2,12,17,22,27 minus div3 → 2,12? recount below
		{"v != 2", 16},    // non-null rows failing =2
		{"v < 2", 8},      // 0,1 values on non-null rows
		{"v IS NULL", 10}, // every third row
		{"v IS NOT NULL", 20},
		{"v IS NOT NULL AND v >= 3", 8},
	}
	// Recompute expectations from the same data definition rather than
	// trusting the comments above.
	for ci := range cases {
		n := 0
		for i := 0; i < 30; i++ {
			null := i%3 == 0
			v := int64(i % 5)
			pass := false
			switch cases[ci].where {
			case "v = 2":
				pass = !null && v == 2
			case "v != 2":
				pass = !null && v != 2
			case "v < 2":
				pass = !null && v < 2
			case "v IS NULL":
				pass = null
			case "v IS NOT NULL":
				pass = !null
			case "v IS NOT NULL AND v >= 3":
				pass = !null && v >= 3
			}
			if pass {
				n++
			}
		}
		cases[ci].want = n
	}
	tbl, err := e.cat.Table("n")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		q := "SELECT k FROM n WHERE " + tc.where
		serial := e.MustExec(q)
		if len(serial.Rows) != tc.want {
			t.Fatalf("serial %q: %d rows, want %d", tc.where, len(serial.Rows), tc.want)
		}
		for _, workers := range []int{1, 4} {
			res, _, err := e.ExecuteSQL(q, ExecOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(rowsMultiset(res)) != fmt.Sprint(rowsMultiset(serial)) {
				t.Fatalf("batch %q w=%d: %v != serial %v", tc.where, workers,
					rowsMultiset(res), rowsMultiset(serial))
			}
		}
		// Morsel pipeline: the boxed predicate through FilterMorsels.
		pred, err := compilePreds(tableSchema("n", tbl), MustParse(q).(*SelectStmt).Where)
		if err != nil {
			t.Fatal(err)
		}
		src := operators.NewFilterMorsels(operators.NewHeapMorsels(tbl.Heap), pred)
		n := 0
		for {
			m, err := src.NextMorsel()
			if err != nil {
				t.Fatal(err)
			}
			if m == nil {
				break
			}
			n += len(m)
		}
		if n != tc.want {
			t.Fatalf("morsel %q: %d rows, want %d", tc.where, n, tc.want)
		}
	}
}

// TestKernelUnderTxnSnapshot: zone maps summarise every MVCC version,
// so pruning must stay sound for old snapshots — a transaction begun
// before concurrent updates keeps its rows under the kernel path at
// every worker/batch shape.
func TestKernelUnderTxnSnapshot(t *testing.T) {
	eng, db := newTxnEngine(t, 300, false)
	if err := db.Checkpoint(); err != nil { // build zone maps
		t.Fatal(err)
	}
	old := db.Txns().Begin()
	defer old.Rollback()

	writer := db.Txns().Begin()
	for i := 0; i < 40; i++ {
		if _, err := eng.ExecTxn(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'new')", 900+i), writer); err != nil {
			t.Fatal(err)
		}
	}
	// Update rows the writer itself inserted: stamping xmax on an
	// already-versioned record rewrites the header in place, so this
	// works regardless of how tightly the seed pages are packed (plain
	// records on a full page cannot grow a version header in place — a
	// pre-existing engine limit unrelated to zone maps).
	if _, err := eng.ExecTxn("UPDATE kv SET v = 'moved' WHERE k >= 930", writer); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil { // rebuild zones over both versions
		t.Fatal(err)
	}

	fresh := db.Txns().Begin()
	defer fresh.Rollback()
	for _, tc := range []struct {
		txn  *storage.Txn
		q    string
		want int
	}{
		{old, "SELECT k FROM kv WHERE k >= 900", 0},
		{fresh, "SELECT k FROM kv WHERE k >= 900", 40},
		{old, "SELECT k FROM kv WHERE v = 'moved'", 0},
		{fresh, "SELECT k FROM kv WHERE v = 'moved'", 10},
		{old, "SELECT k FROM kv WHERE k >= 930", 0},
		{fresh, "SELECT k FROM kv WHERE k >= 930", 10},
		{old, "SELECT k FROM kv WHERE k < 10", 10},
		{fresh, "SELECT k FROM kv WHERE k < 10", 10},
	} {
		for _, workers := range []int{1, 4} {
			for _, batch := range []int{1, 64, 1024} {
				for _, boxed := range []bool{false, true} {
					res, _, err := eng.ExecuteSQL(tc.q, ExecOptions{
						Workers: workers, BatchSize: batch, Txn: tc.txn, NoVectorKernels: boxed,
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Rows) != tc.want {
						t.Fatalf("%s (w=%d b=%d boxed=%v): %d rows, want %d",
							tc.q, workers, batch, boxed, len(res.Rows), tc.want)
					}
				}
			}
		}
	}
}

// TestKernelAfterCrashRecovery: recovery rebuilds zone maps from the
// recovered heaps; the kernel path must agree with the boxed path on
// the reopened database.
func TestKernelAfterCrashRecovery(t *testing.T) {
	wal, data := storage.NewMemDisk(), storage.NewMemDisk()
	e, db := openDurableEngine(t, wal, data)
	seedDurable(t, e)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.MustExec("DELETE FROM users WHERE id = 7")
	e.MustExec("UPDATE users SET age = 99 WHERE id = 41")

	e2, _ := openDurableEngine(t,
		storage.NewMemDiskFrom(wal.Bytes()), storage.NewMemDiskFrom(data.Bytes()))
	for _, q := range []string{
		"SELECT id FROM users WHERE age = 99",
		"SELECT id FROM users WHERE id < 30",
		"SELECT id FROM users WHERE city = 'paris' AND age > 40",
		"SELECT id FROM orders WHERE amount < 50",
	} {
		kres, _, err := e2.ExecuteSQL(q, ExecOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		bres, _, err := e2.ExecuteSQL(q, ExecOptions{Workers: 4, NoVectorKernels: true})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(rowsMultiset(kres)) != fmt.Sprint(rowsMultiset(bres)) {
			t.Fatalf("%s after recovery: kernel %v != boxed %v", q,
				rowsMultiset(kres), rowsMultiset(bres))
		}
	}
}

// TestKernelZonePruningObserved: a clustered predicate on a
// checkpointed table must actually skip pages (the perf mechanism is
// live, not just sound) and still return exact rows.
func TestKernelZonePruningObserved(t *testing.T) {
	eng, db := newTxnEngine(t, 4000, false)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, rep, err := eng.ExecuteSQL("SELECT k FROM kv WHERE k < 40", ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("%d rows, want 40", len(res.Rows))
	}
	if len(rep.scans) != 1 || rep.scans[0].scanStats == nil {
		t.Fatalf("scan stats missing: %+v", rep.scans)
	}
	st := rep.scans[0].scanStats
	if st.Pruned.Load() == 0 {
		t.Fatalf("no pages pruned over a clustered 1%% predicate (scanned=%d)", st.Scanned.Load())
	}
	if !strings.Contains(res.Plan, "pruned=") || !strings.Contains(res.Plan, "kernel[k < 40]") {
		t.Fatalf("plan missing filter summary: %s", res.Plan)
	}
}

// TestExplainGoldenFilterKernel pins the EXPLAIN rendering of the
// filter strategy next to the adaptation summary goldens: kernel
// conjuncts for the vectorized path, boxed for a DML-side clause.
func TestExplainGoldenFilterKernel(t *testing.T) {
	e := explainEngine(t)
	got := explainOf(t, e, "SELECT id FROM s WHERE rid < 4 AND id != 2")
	want := "SeqScan(s est=33) | filter(s): pruned=0/0 kernel[rid < 4 AND id != 2]"
	if got != want {
		t.Fatalf("plan =\n  %s\nwant\n  %s", got, want)
	}
	// IS NULL renders through the same path.
	got = explainOf(t, e, "SELECT id FROM s WHERE rid IS NOT NULL")
	want = "SeqScan(s est=33) | filter(s): pruned=0/0 kernel[rid IS NOT NULL]"
	if got != want {
		t.Fatalf("plan =\n  %s\nwant\n  %s", got, want)
	}
}

// TestExecutedPlanFilterSummary pins the post-execution rendering:
// real prune counters from a checkpointed, multi-page table.
func TestExecutedPlanFilterSummary(t *testing.T) {
	eng, db := newTxnEngine(t, 4000, false)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	h, _ := db.File("kv")
	pages := len(h.PageIDs())
	if pages < 4 {
		t.Fatalf("need a multi-page table, got %d pages", pages)
	}
	res, _, err := eng.ExecuteSQL("SELECT k FROM kv WHERE k < 40", ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(res.Plan, " | filter(kv): pruned=")
	if idx < 0 {
		t.Fatalf("executed plan missing filter summary: %s", res.Plan)
	}
	if !strings.HasSuffix(res.Plan, fmt.Sprintf("/%d kernel[k < 40]", pages)) {
		t.Fatalf("summary denominator should be the page count %d: %s", pages, res.Plan)
	}
}

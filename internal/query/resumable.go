package query

import (
	"encoding/json"
	"fmt"
	"strings"

	"github.com/adm-project/adm/internal/storage"
)

// This file implements the paper's §1 requirement that "the system
// must be able to cope with units failing — perhaps mid way through
// answering a query (and being replaced with minimal maintenance or
// the whole processing 'jumping' to another device to
// continue/finish)": a ResumableAgg is an aggregation query whose
// execution state (scan position + partial aggregates) is a
// component.Stateful — the State Manager can checkpoint it at safe
// points, and after the hosting device dies the snapshot restores
// onto another device's replica and the query finishes there.
//
// Resumability requires both replicas to enumerate rows in the same
// order; heap files built from the same insert sequence do (page,
// slot) order, which the restore path verifies with a row checksum.

// ResumableAgg incrementally computes COUNT/SUM/MIN/MAX/AVG of one
// column with an optional predicate.
type ResumableAgg struct {
	table *Table
	col   int
	pred  func(storage.Tuple) bool

	rows []storage.Tuple // materialised snapshot in scan order

	// execution state (the checkpoint payload)
	pos      int
	count    int64
	sum      float64
	min, max *float64
	checksum uint64
}

// NewResumableAgg starts a resumable aggregation over table.col with
// an optional WHERE conjunction.
func NewResumableAgg(cat *Catalog, table, col string, where []Pred) (*ResumableAgg, error) {
	t, err := cat.Table(table)
	if err != nil {
		return nil, err
	}
	ci, ok := t.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, table, col)
	}
	var pred func(storage.Tuple) bool
	if len(where) > 0 {
		pred, err = compilePreds(tableSchema(table, t), where)
		if err != nil {
			return nil, err
		}
	}
	rows, err := t.Heap.All()
	if err != nil {
		return nil, err
	}
	return &ResumableAgg{table: t, col: ci, pred: pred, rows: rows}, nil
}

// Remaining reports rows not yet consumed.
func (q *ResumableAgg) Remaining() int { return len(q.rows) - q.pos }

// Done reports completion.
func (q *ResumableAgg) Done() bool { return q.pos >= len(q.rows) }

// Position returns rows consumed so far.
func (q *ResumableAgg) Position() int { return q.pos }

// Step consumes up to n rows; it returns the number actually
// consumed. Each consumed row folds into the running aggregates and
// the order checksum.
func (q *ResumableAgg) Step(n int) int {
	done := 0
	for ; done < n && q.pos < len(q.rows); done++ {
		row := q.rows[q.pos]
		q.checksum = q.checksum*1099511628211 + rowHash(row)
		q.pos++
		if q.pred != nil && !q.pred(row) {
			continue
		}
		v := row[q.col]
		if v.IsNull() {
			continue
		}
		f, ok := v.AsFloat()
		if !ok {
			continue
		}
		q.count++
		q.sum += f
		if q.min == nil || f < *q.min {
			m := f
			q.min = &m
		}
		if q.max == nil || f > *q.max {
			m := f
			q.max = &m
		}
	}
	return done
}

func rowHash(t storage.Tuple) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range t {
		for _, b := range []byte(v.String()) {
			h = (h ^ uint64(b)) * 1099511628211
		}
		h = (h ^ uint64(v.Kind)) * 1099511628211
	}
	return h
}

// AggResult is the final (or running) aggregate view.
type AggResult struct {
	Count int64
	Sum   float64
	Avg   float64
	Min   float64
	Max   float64
	// Valid is false when no qualifying rows were seen yet.
	Valid bool
}

// Result returns the current aggregates.
func (q *ResumableAgg) Result() AggResult {
	r := AggResult{Count: q.count, Sum: q.sum}
	if q.count > 0 {
		r.Avg = q.sum / float64(q.count)
		r.Min, r.Max = *q.min, *q.max
		r.Valid = true
	}
	return r
}

// checkpoint is the serialised execution state.
type checkpoint struct {
	Pos      int      `json:"pos"`
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Min      *float64 `json:"min,omitempty"`
	Max      *float64 `json:"max,omitempty"`
	Checksum uint64   `json:"checksum"`
	Table    string   `json:"table"`
	Col      int      `json:"col"`
}

// CaptureState implements component.Stateful: the safe-point snapshot
// the State Manager stores.
func (q *ResumableAgg) CaptureState() ([]byte, error) {
	return json.Marshal(checkpoint{
		Pos: q.pos, Count: q.count, Sum: q.sum, Min: q.min, Max: q.max,
		Checksum: q.checksum, Table: q.table.Name, Col: q.col,
	})
}

// RestoreState implements component.Stateful: reinstate a snapshot
// taken on another device. The replica's prefix is re-hashed and must
// match the snapshot's checksum — detecting divergent replicas before
// producing a wrong answer.
func (q *ResumableAgg) RestoreState(b []byte) error {
	var cp checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return fmt.Errorf("query: restore: %w", err)
	}
	if !strings.EqualFold(cp.Table, q.table.Name) {
		return fmt.Errorf("query: restore: snapshot is for table %q, not %q", cp.Table, q.table.Name)
	}
	if cp.Col != q.col {
		return fmt.Errorf("query: restore: snapshot aggregates column %d, not %d", cp.Col, q.col)
	}
	if cp.Pos > len(q.rows) {
		return fmt.Errorf("query: restore: snapshot position %d beyond replica size %d", cp.Pos, len(q.rows))
	}
	var sum uint64
	for i := 0; i < cp.Pos; i++ {
		sum = sum*1099511628211 + rowHash(q.rows[i])
	}
	if sum != cp.Checksum {
		return fmt.Errorf("query: restore: replica prefix diverges from snapshot (checksum %x != %x)", sum, cp.Checksum)
	}
	q.pos = cp.Pos
	q.count = cp.Count
	q.sum = cp.Sum
	q.min = cp.Min
	q.max = cp.Max
	q.checksum = cp.Checksum
	return nil
}

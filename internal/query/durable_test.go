package query

import (
	"fmt"
	"testing"

	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

func openDurableEngine(t *testing.T, wal, data *storage.MemDisk) (*Engine, *storage.DB) {
	t.Helper()
	db, err := storage.Open(wal, data, storage.DBOptions{BufferFrames: 256})
	if err != nil {
		t.Fatalf("open db: %v", err)
	}
	cat, err := NewDurableCatalog(db)
	if err != nil {
		t.Fatalf("durable catalog: %v", err)
	}
	return NewEngine(cat, trace.New(), nil), db
}

func seedDurable(t *testing.T, e *Engine) {
	t.Helper()
	e.MustExec("CREATE TABLE users (id INT, city STRING, age INT)")
	e.MustExec("CREATE TABLE orders (id INT, user_id INT, amount INT)")
	cities := []string{"london", "paris", "tokyo"}
	for i := 0; i < 90; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO users VALUES (%d, '%s', %d)",
			i, cities[i%len(cities)], 18+i%50))
	}
	for i := 0; i < 300; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d)",
			i, i%90, (i*37)%500))
	}
	e.MustExec("CREATE INDEX ON users (id)")
	e.MustExec("CREATE INDEX ON orders (user_id)")
}

var durableQueries = []string{
	"SELECT id, city, age FROM users",
	"SELECT id, age FROM users WHERE id = 41",
	"SELECT u.city, SUM(o.amount) FROM users u JOIN orders o ON u.id = o.user_id GROUP BY u.city",
	"SELECT id, amount FROM orders ORDER BY amount DESC LIMIT 9",
}

// TestDurableCatalogCrashRoundtrip seeds tables + indexes through SQL,
// simulates a crash by reopening from copies of the disk images, and
// requires every query to return the same rows — with and without a
// checkpoint before the crash.
func TestDurableCatalogCrashRoundtrip(t *testing.T) {
	for _, checkpoint := range []bool{false, true} {
		name := "no-checkpoint"
		if checkpoint {
			name = "checkpoint"
		}
		t.Run(name, func(t *testing.T) {
			wal, data := storage.NewMemDisk(), storage.NewMemDisk()
			e, db := openDurableEngine(t, wal, data)
			seedDurable(t, e)
			if checkpoint {
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
			e.MustExec("DELETE FROM users WHERE id = 7")
			e.MustExec("UPDATE users SET age = 99 WHERE id = 41")
			want := map[string][]string{}
			for _, q := range durableQueries {
				want[q] = rowsMultiset(e.MustExec(q))
			}

			// Crash: the old engine's in-memory state is abandoned; only
			// the disk images survive.
			e2, db2 := openDurableEngine(t,
				storage.NewMemDiskFrom(wal.Bytes()), storage.NewMemDiskFrom(data.Bytes()))
			if checkpoint && !db2.Stats().Recovery.CheckpointFound {
				t.Fatal("recovery missed the checkpoint")
			}
			for _, q := range durableQueries {
				got := rowsMultiset(e2.MustExec(q))
				if len(got) != len(want[q]) {
					t.Fatalf("%s: %d rows after recovery, want %d", q, len(got), len(want[q]))
				}
				for i := range got {
					if got[i] != want[q][i] {
						t.Fatalf("%s: row %d = %q, want %q", q, i, got[i], want[q][i])
					}
				}
			}

			// The recovered catalog must have adopted the rebuilt trees,
			// and they must agree with the heap.
			cat := e2.cat
			ut, err := cat.Table("users")
			if err != nil {
				t.Fatalf("users table missing after recovery: %v", err)
			}
			idx, ok := ut.Index("id")
			if !ok {
				t.Fatal("users(id) index missing after recovery")
			}
			if idx.Len() != ut.Heap.Count() {
				t.Fatalf("index has %d keys, heap has %d rows", idx.Len(), ut.Heap.Count())
			}
			if rids := idx.Search(storage.IntValue(7)); len(rids) != 0 {
				t.Fatalf("deleted key 7 still indexed: %v", rids)
			}

			// The recovered engine must accept new DDL and DML.
			e2.MustExec("INSERT INTO users VALUES (990, 'sydney', 31)")
			e2.MustExec("CREATE TABLE tags (id INT, tag STRING)")
			e2.MustExec("INSERT INTO tags VALUES (1, 'alpha')")
			got := rowsMultiset(e2.MustExec("SELECT id FROM users WHERE id = 990"))
			if len(got) != 1 {
				t.Fatalf("post-recovery insert invisible: %v", got)
			}
		})
	}
}

// TestDurableCatalogSchemaRoundtrip pins the schema codec.
func TestDurableCatalogSchemaRoundtrip(t *testing.T) {
	cols := []Column{
		{Name: "id", Type: TInt},
		{Name: "score", Type: TFloat},
		{Name: "name", Type: TString},
		{Name: "ok", Type: TBool},
	}
	enc := encodeSchema(cols)
	dec, err := decodeSchema(enc)
	if err != nil {
		t.Fatalf("decode %q: %v", enc, err)
	}
	if len(dec) != len(cols) {
		t.Fatalf("%d cols, want %d", len(dec), len(cols))
	}
	for i := range cols {
		if dec[i] != cols[i] {
			t.Fatalf("col %d = %+v, want %+v", i, dec[i], cols[i])
		}
	}
	if _, err := decodeSchema("id BLOB"); err == nil {
		t.Fatal("bad type accepted")
	}
	if _, err := decodeSchema(""); err == nil {
		t.Fatal("empty schema accepted")
	}
}

// TestDurableCatalogTornSchemaSkipsTable: a crash between the logged
// CreateFile and its schema meta record must not surface a half-made
// table after recovery.
func TestDurableCatalogTornSchemaSkipsTable(t *testing.T) {
	wal, data := storage.NewMemDisk(), storage.NewMemDisk()
	db, err := storage.Open(wal, data, storage.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateFile("ghost"); err != nil {
		t.Fatal(err)
	}
	// No schema meta: simulates the crash window inside CreateTable.
	cat, err := NewDurableCatalog(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Table("ghost"); err == nil {
		t.Fatal("half-created table visible")
	}
	// And it does not block re-creating the table properly.
	if _, err := cat.CreateTable("ghost", []Column{{Name: "id", Type: TInt}}); err != nil {
		t.Fatalf("re-create after torn DDL: %v", err)
	}
}

package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/adm-project/adm/internal/storage"
)

// The SQL subset:
//
//	SELECT item [, item]* FROM t [alias] [JOIN t2 [alias] ON a.x = b.y]*
//	    [WHERE col op lit [AND ...]] [GROUP BY col] [ORDER BY col [DESC]]
//	    [LIMIT n]
//	item := * | col | COUNT(*) | COUNT|SUM|AVG|MIN|MAX '(' col ')'
//	INSERT INTO t VALUES (lit, ...) [, (lit, ...)]*
//	UPDATE t SET col = lit [, col = lit]* [WHERE ...]
//	DELETE FROM t [WHERE ...]
//	CREATE TABLE t (col TYPE [, col TYPE]*)
//	CREATE INDEX ON t (col)
//	ANALYZE t
//
// Identifiers and keywords are case-insensitive; strings are
// single-quoted with '' escaping.

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// ColRef names a (possibly table-qualified) column.
type ColRef struct {
	Table string
	Col   string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// CmpOp is a comparison operator in WHERE/ON clauses.
type CmpOp int

// Comparison operators. OpIsNull/OpNotNull are the SQL null tests —
// unary, their Pred carries no meaningful literal and they never go
// through Eval.
const (
	OpEQ CmpOp = iota
	OpNE
	OpLT
	OpGT
	OpLE
	OpGE
	OpIsNull
	OpNotNull
)

func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", ">", "<=", ">=", "IS NULL", "IS NOT NULL"}[o]
}

// Eval applies a comparison operator to a Compare result. The null
// tests are not comparisons and always answer false here — callers
// dispatch them on the value's kind before comparing.
func (o CmpOp) Eval(cmp int) bool {
	switch o {
	case OpEQ:
		return cmp == 0
	case OpNE:
		return cmp != 0
	case OpLT:
		return cmp < 0
	case OpGT:
		return cmp > 0
	case OpLE:
		return cmp <= 0
	case OpGE:
		return cmp >= 0
	}
	return false
}

// Pred is one conjunct: col op literal, or a unary null test.
type Pred struct {
	Col ColRef
	Op  CmpOp
	Lit storage.Value
}

func (p Pred) String() string {
	if p.Op == OpIsNull || p.Op == OpNotNull {
		return fmt.Sprintf("%s %s", p.Col, p.Op)
	}
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Lit)
}

// AggFunc names an aggregate.
type AggFunc string

// Aggregate functions.
const (
	AggNone  AggFunc = ""
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// SelectItem is one output expression.
type SelectItem struct {
	Star bool
	Agg  AggFunc
	// AggStar marks COUNT(*).
	AggStar bool
	Col     ColRef
}

// TableRef is FROM/JOIN table with optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding name used in column resolution.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN ... ON a.x = b.y.
type JoinClause struct {
	Table TableRef
	LCol  ColRef
	RCol  ColRef
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   []Pred
	GroupBy *ColRef
	OrderBy *ColRef
	Desc    bool
	Limit   int // -1 = none
}

func (*SelectStmt) stmt() {}

// InsertStmt is a parsed INSERT.
type InsertStmt struct {
	Table string
	Rows  [][]storage.Value
}

func (*InsertStmt) stmt() {}

// UpdateStmt is a parsed UPDATE.
type UpdateStmt struct {
	Table string
	Set   map[string]storage.Value
	Where []Pred
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is a parsed DELETE.
type DeleteStmt struct {
	Table string
	Where []Pred
}

func (*DeleteStmt) stmt() {}

// CreateTableStmt is a parsed CREATE TABLE.
type CreateTableStmt struct {
	Name string
	Cols []Column
}

func (*CreateTableStmt) stmt() {}

// CreateIndexStmt is a parsed CREATE INDEX.
type CreateIndexStmt struct {
	Table string
	Col   string
}

func (*CreateIndexStmt) stmt() {}

// AnalyzeStmt is a parsed ANALYZE.
type AnalyzeStmt struct {
	Table string
}

func (*AnalyzeStmt) stmt() {}

// ExplainStmt wraps a SELECT whose plan (not results) is wanted.
type ExplainStmt struct {
	Select *SelectStmt
}

func (*ExplainStmt) stmt() {}

// BeginStmt is a parsed BEGIN: open an explicit transaction.
type BeginStmt struct{}

func (*BeginStmt) stmt() {}

// CommitStmt is a parsed COMMIT.
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// RollbackStmt is a parsed ROLLBACK.
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}

// ParseError reports a SQL syntax error.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("sql: at %d: %s", e.Pos, e.Msg) }

// ---------------------------------------------------------------------------
// Lexer.

type sqlTokKind int

const (
	sEOF sqlTokKind = iota
	sIdent
	sNumber
	sString
	sStar
	sComma
	sLParen
	sRParen
	sDot
	sEq
	sNe
	sLt
	sGt
	sLe
	sGe
	sSemi
)

type sqlTok struct {
	kind sqlTokKind
	text string
	pos  int
}

func sqlLex(src string) ([]sqlTok, error) {
	var toks []sqlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '*':
			toks = append(toks, sqlTok{sStar, "*", i})
			i++
		case c == ',':
			toks = append(toks, sqlTok{sComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, sqlTok{sLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, sqlTok{sRParen, ")", i})
			i++
		case c == '.':
			toks = append(toks, sqlTok{sDot, ".", i})
			i++
		case c == ';':
			toks = append(toks, sqlTok{sSemi, ";", i})
			i++
		case c == '=':
			toks = append(toks, sqlTok{sEq, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, sqlTok{sNe, "!=", i})
				i += 2
			} else {
				return nil, &ParseError{Pos: i, Msg: "unexpected '!'"}
			}
		case c == '<':
			switch {
			case i+1 < len(src) && src[i+1] == '=':
				toks = append(toks, sqlTok{sLe, "<=", i})
				i += 2
			case i+1 < len(src) && src[i+1] == '>':
				toks = append(toks, sqlTok{sNe, "<>", i})
				i += 2
			default:
				toks = append(toks, sqlTok{sLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, sqlTok{sGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, sqlTok{sGt, ">", i})
				i++
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, &ParseError{Pos: i, Msg: "unterminated string"}
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, sqlTok{sString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, sqlTok{sNumber, src[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, sqlTok{sIdent, src[i:j], i})
			i = j
		default:
			return nil, &ParseError{Pos: i, Msg: fmt.Sprintf("unexpected %q", c)}
		}
	}
	toks = append(toks, sqlTok{sEOF, "", len(src)})
	return toks, nil
}

// ---------------------------------------------------------------------------
// Parser.

type sqlParser struct {
	toks []sqlTok
	pos  int
}

func (p *sqlParser) peek() sqlTok { return p.toks[p.pos] }
func (p *sqlParser) next() sqlTok { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) kw(word string) bool {
	t := p.peek()
	if t.kind == sIdent && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKw(word string) error {
	if !p.kw(word) {
		t := p.peek()
		return &ParseError{Pos: t.pos, Msg: fmt.Sprintf("expected %s, got %q", word, t.text)}
	}
	return nil
}

func (p *sqlParser) expect(k sqlTokKind, what string) (sqlTok, error) {
	t := p.peek()
	if t.kind != k {
		return sqlTok{}, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("expected %s, got %q", what, t.text)}
	}
	return p.next(), nil
}

func (p *sqlParser) ident(what string) (string, error) {
	t, err := p.expect(sIdent, what)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

// Parse compiles one SQL statement.
func Parse(src string) (Stmt, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	var st Stmt
	switch {
	case p.kw("SELECT"):
		st, err = p.selectStmt()
	case p.kw("INSERT"):
		st, err = p.insertStmt()
	case p.kw("UPDATE"):
		st, err = p.updateStmt()
	case p.kw("DELETE"):
		st, err = p.deleteStmt()
	case p.kw("CREATE"):
		st, err = p.createStmt()
	case p.kw("ANALYZE"):
		tbl, e := p.ident("table name")
		st, err = &AnalyzeStmt{Table: tbl}, e
	case p.kw("EXPLAIN"):
		if err := p.expectKw("SELECT"); err != nil {
			return nil, err
		}
		var sel *SelectStmt
		sel, err = p.selectStmt()
		st = &ExplainStmt{Select: sel}
	case p.kw("BEGIN"):
		st = &BeginStmt{}
	case p.kw("COMMIT"):
		st = &CommitStmt{}
	case p.kw("ROLLBACK"):
		st = &RollbackStmt{}
	default:
		t := p.peek()
		return nil, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("unknown statement %q", t.text)}
	}
	if err != nil {
		return nil, err
	}
	if p.peek().kind == sSemi {
		p.next()
	}
	if p.peek().kind != sEOF {
		t := p.peek()
		return nil, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("trailing input %q", t.text)}
	}
	return st, nil
}

// MustParse panics on error (fixtures/tests).
func MustParse(src string) Stmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

var aggNames = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

var reservedAfterItem = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "ORDER": true, "LIMIT": true,
	"JOIN": true, "ON": true, "AND": true, "BY": true, "DESC": true, "ASC": true,
	"SET": true, "VALUES": true, "INTO": true,
}

func (p *sqlParser) colRef() (ColRef, error) {
	first, err := p.ident("column name")
	if err != nil {
		return ColRef{}, err
	}
	if p.peek().kind == sDot {
		p.next()
		col, err := p.ident("column name")
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Col: col}, nil
	}
	return ColRef{Col: first}, nil
}

func (p *sqlParser) selectStmt() (*SelectStmt, error) {
	st := &SelectStmt{Limit: -1}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.peek().kind == sComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	st.From = from
	for p.kw("JOIN") {
		jt, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		l, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sEq, "'='"); err != nil {
			return nil, err
		}
		r, err := p.colRef()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinClause{Table: jt, LCol: l, RCol: r})
	}
	if p.kw("WHERE") {
		preds, err := p.predList()
		if err != nil {
			return nil, err
		}
		st.Where = preds
	}
	if p.kw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		st.GroupBy = &c
	}
	if p.kw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		st.OrderBy = &c
		if p.kw("DESC") {
			st.Desc = true
		} else {
			p.kw("ASC")
		}
	}
	if p.kw("LIMIT") {
		n, err := p.expect(sNumber, "limit count")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return nil, &ParseError{Pos: n.pos, Msg: "bad LIMIT"}
		}
		st.Limit = v
	}
	return st, nil
}

func (p *sqlParser) selectItem() (SelectItem, error) {
	if p.peek().kind == sStar {
		p.next()
		return SelectItem{Star: true}, nil
	}
	t := p.peek()
	if t.kind == sIdent {
		if agg, ok := aggNames[strings.ToUpper(t.text)]; ok && p.toks[p.pos+1].kind == sLParen {
			p.next() // agg name
			p.next() // (
			if p.peek().kind == sStar {
				if agg != AggCount {
					return SelectItem{}, &ParseError{Pos: t.pos, Msg: "only COUNT(*) allowed"}
				}
				p.next()
				if _, err := p.expect(sRParen, "')'"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Agg: agg, AggStar: true}, nil
			}
			c, err := p.colRef()
			if err != nil {
				return SelectItem{}, err
			}
			if _, err := p.expect(sRParen, "')'"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg, Col: c}, nil
		}
	}
	c, err := p.colRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: c}, nil
}

func (p *sqlParser) tableRef() (TableRef, error) {
	name, err := p.ident("table name")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if t := p.peek(); t.kind == sIdent && !reservedAfterItem[strings.ToUpper(t.text)] {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *sqlParser) predList() ([]Pred, error) {
	var out []Pred
	for {
		pr, err := p.pred()
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
		if p.kw("AND") {
			continue
		}
		return out, nil
	}
}

func (p *sqlParser) pred() (Pred, error) {
	c, err := p.colRef()
	if err != nil {
		return Pred{}, err
	}
	if p.kw("IS") {
		op := OpIsNull
		if p.kw("NOT") {
			op = OpNotNull
		}
		if err := p.expectKw("NULL"); err != nil {
			return Pred{}, err
		}
		return Pred{Col: c, Op: op, Lit: storage.NullValue()}, nil
	}
	op, err := p.cmpOp()
	if err != nil {
		return Pred{}, err
	}
	lit, err := p.literal()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Col: c, Op: op, Lit: lit}, nil
}

func (p *sqlParser) cmpOp() (CmpOp, error) {
	t := p.next()
	switch t.kind {
	case sEq:
		return OpEQ, nil
	case sNe:
		return OpNE, nil
	case sLt:
		return OpLT, nil
	case sGt:
		return OpGT, nil
	case sLe:
		return OpLE, nil
	case sGe:
		return OpGE, nil
	}
	return 0, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("expected comparison, got %q", t.text)}
}

func (p *sqlParser) literal() (storage.Value, error) {
	t := p.next()
	switch t.kind {
	case sNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return storage.Value{}, &ParseError{Pos: t.pos, Msg: "bad float"}
			}
			return storage.FloatValue(f), nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return storage.Value{}, &ParseError{Pos: t.pos, Msg: "bad int"}
		}
		return storage.IntValue(v), nil
	case sString:
		return storage.StringValue(t.text), nil
	case sIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			return storage.BoolValue(true), nil
		case "FALSE":
			return storage.BoolValue(false), nil
		case "NULL":
			return storage.NullValue(), nil
		}
	}
	return storage.Value{}, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("expected literal, got %q", t.text)}
}

func (p *sqlParser) insertStmt() (*InsertStmt, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	for {
		if _, err := p.expect(sLParen, "'('"); err != nil {
			return nil, err
		}
		var row []storage.Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.peek().kind == sComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(sRParen, "')'"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.peek().kind == sComma {
			p.next()
			continue
		}
		break
	}
	return st, nil
}

func (p *sqlParser) updateStmt() (*UpdateStmt, error) {
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table, Set: map[string]storage.Value{}}
	for {
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sEq, "'='"); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Set[strings.ToLower(col)] = v
		if p.peek().kind == sComma {
			p.next()
			continue
		}
		break
	}
	if p.kw("WHERE") {
		preds, err := p.predList()
		if err != nil {
			return nil, err
		}
		st.Where = preds
	}
	return st, nil
}

func (p *sqlParser) deleteStmt() (*DeleteStmt, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.kw("WHERE") {
		preds, err := p.predList()
		if err != nil {
			return nil, err
		}
		st.Where = preds
	}
	return st, nil
}

var typeNames = map[string]ColumnType{
	"INT": TInt, "INTEGER": TInt, "FLOAT": TFloat, "REAL": TFloat,
	"STRING": TString, "TEXT": TString, "VARCHAR": TString, "BOOL": TBool,
}

func (p *sqlParser) createStmt() (Stmt, error) {
	switch {
	case p.kw("TABLE"):
		name, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sLParen, "'('"); err != nil {
			return nil, err
		}
		st := &CreateTableStmt{Name: name}
		for {
			col, err := p.ident("column name")
			if err != nil {
				return nil, err
			}
			tn, err := p.ident("type name")
			if err != nil {
				return nil, err
			}
			ct, ok := typeNames[strings.ToUpper(tn)]
			if !ok {
				return nil, &ParseError{Pos: p.peek().pos, Msg: fmt.Sprintf("unknown type %q", tn)}
			}
			st.Cols = append(st.Cols, Column{Name: col, Type: ct})
			if p.peek().kind == sComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(sRParen, "')'"); err != nil {
			return nil, err
		}
		return st, nil
	case p.kw("INDEX"):
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sLParen, "'('"); err != nil {
			return nil, err
		}
		col, err := p.ident("column name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sRParen, "')'"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Table: table, Col: col}, nil
	}
	t := p.peek()
	return nil, &ParseError{Pos: t.pos, Msg: "expected TABLE or INDEX"}
}

package query

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// seedMessy builds a table whose sort key column is hostile: heavy
// duplicates, NaN, negative zero and NULL floats. NaN and -0 have no
// SQL literal, so those rows go in through the catalog directly.
func seedMessy(t *testing.T, e *Engine) int {
	t.Helper()
	e.MustExec("CREATE TABLE m (k FLOAT, grp INT, val INT)")
	keys := []float64{1, 1, 2, 2, 2, 3, 7.5, -4.25}
	n := 0
	for i := 0; i < 600; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO m VALUES (%g, %d, %d)",
			keys[i%len(keys)], i%7, i))
		n++
	}
	odd := []storage.Value{
		storage.FloatValue(math.NaN()),
		storage.FloatValue(math.NaN()),
		storage.FloatValue(math.Copysign(0, -1)),
		storage.FloatValue(math.Copysign(0, -1)),
		storage.FloatValue(0),
		storage.NullValue(),
		storage.NullValue(),
		storage.NullValue(),
	}
	for i, k := range odd {
		if _, err := e.cat.Insert("m", storage.Tuple{k,
			storage.IntValue(int64(i % 7)), storage.IntValue(int64(1000 + i))}); err != nil {
			t.Fatal(err)
		}
		n++
	}
	e.MustExec("ANALYZE m")
	return n
}

// rowsOrdered renders result rows in order, kind-tagged, so the
// comparison is byte-for-byte: -0 vs 0 and Int vs Float renderings of
// the same number stay distinguishable.
func rowsOrdered(r *Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, fmt.Sprintf("%d:%s", v.Kind, v.String()))
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func requireSameOrdered(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

// TestParallelOrderByMatchesSerial asserts the parallel ORDER BY
// pipeline (worker runs + loser-tree merge, or Top-K heaps under
// LIMIT) emits byte-for-byte the serial sequence, across worker
// counts 1/2/4/8 and batch sizes 1/64/1024, on a key column full of
// duplicates, NaN, -0 and NULL.
func TestParallelOrderByMatchesSerial(t *testing.T) {
	e := NewEngine(NewCatalog(256), trace.New(), nil)
	n := seedMessy(t, e)

	queries := []string{
		"SELECT k, grp, val FROM m ORDER BY k",
		"SELECT k, grp, val FROM m ORDER BY k DESC",
		"SELECT val, k FROM m ORDER BY k",                              // projection after sort
		"SELECT k, val FROM m ORDER BY k LIMIT 0",                      // LIMIT below
		"SELECT k, val FROM m ORDER BY k LIMIT 9",                      // LIMIT below
		"SELECT k, val FROM m ORDER BY k DESC LIMIT 9",                 // DESC Top-K
		fmt.Sprintf("SELECT k, val FROM m ORDER BY k LIMIT %d", n),     // LIMIT at
		fmt.Sprintf("SELECT k, val FROM m ORDER BY k LIMIT %d", n+100), // LIMIT above
		"SELECT k, val FROM m WHERE val > 100 ORDER BY k DESC LIMIT 5", // filter + Top-K
		"SELECT grp, COUNT(*), SUM(val) FROM m GROUP BY grp ORDER BY grp",
		"SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp DESC LIMIT 3",
	}
	for _, sql := range queries {
		t.Run(sql, func(t *testing.T) {
			want := rowsOrdered(e.MustExec(sql))
			for _, w := range []int{1, 2, 4, 8} {
				for _, batch := range []int{1, 64, 1024} {
					res, rep, err := e.ExecuteSQL(sql, ExecOptions{Workers: w, BatchSize: batch})
					if err != nil {
						t.Fatalf("workers=%d batch=%d: %v", w, batch, err)
					}
					if !rep.Parallel {
						t.Fatalf("workers=%d batch=%d: expected parallel execution", w, batch)
					}
					requireSameOrdered(t, fmt.Sprintf("workers=%d batch=%d", w, batch),
						rowsOrdered(res), want)
				}
			}
		})
	}
}

// TestParallelOrderByUnderReplan covers ORDER BY (and ORDER BY +
// LIMIT) downstream of a join that aborts its build at a safe point
// and replans mid-query: the replayed prefix plus side swap must not
// perturb the final ordered output.
func TestParallelOrderByUnderReplan(t *testing.T) {
	for _, sql := range []string{
		"SELECT b.pad, s.tag FROM big b JOIN small s ON b.k = s.k ORDER BY b.pad",
		"SELECT b.pad, s.tag FROM big b JOIN small s ON b.k = s.k ORDER BY b.pad DESC LIMIT 25",
		"SELECT s.tag, COUNT(*), SUM(b.pad) FROM big b JOIN small s ON b.k = s.k GROUP BY s.tag ORDER BY tag",
	} {
		t.Run(sql, func(t *testing.T) {
			e := NewEngine(NewCatalog(256), trace.New(), nil)
			seedParallel(t, e)
			want := rowsOrdered(e.MustExec(sql))
			// Lie about big so it is picked as build side and blows the
			// misestimate bound mid-build.
			if err := e.cat.SetStats("big", TableStats{Rows: 3,
				Distinct: map[string]int{"k": 3}}); err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4} {
				for _, batch := range []int{0, 64} {
					res, rep, err := e.ExecuteSQL(sql, ExecOptions{Workers: w, BatchSize: batch})
					if err != nil {
						t.Fatalf("workers=%d batch=%d: %v", w, batch, err)
					}
					if !rep.Adaptive.Replanned {
						t.Fatalf("workers=%d batch=%d: expected a mid-query replan", w, batch)
					}
					requireSameOrdered(t, fmt.Sprintf("workers=%d batch=%d", w, batch),
						rowsOrdered(res), want)
				}
			}
		})
	}
}

// Transactional SQL tests: snapshot scans through the serial, batch
// and morsel pipelines at several worker counts and batch sizes, and
// DML visibility/conflict behaviour through the engine.
package query

import (
	"errors"
	"fmt"
	"testing"

	"github.com/adm-project/adm/internal/storage"
)

// newTxnEngine builds a durable engine (group-commit WAL policy) with
// a populated table.
func newTxnEngine(t *testing.T, rows int, withIndex bool) (*Engine, *storage.DB) {
	t.Helper()
	db, err := storage.Open(storage.NewMemDisk(), storage.NewMemDisk(),
		storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := NewDurableCatalog(db)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(cat, nil, nil)
	eng.MustExec("CREATE TABLE kv (k INT, v STRING)")
	if withIndex {
		eng.MustExec("CREATE INDEX ON kv (k)")
	}
	for i := 0; i < rows; i++ {
		eng.MustExec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'seed-%d')", i, i))
	}
	return eng, db
}

// countRows runs SELECT through the parallel executor inside txn and
// returns the row count.
func countRows(t *testing.T, eng *Engine, txn *storage.Txn, workers, batch int) int {
	t.Helper()
	res, _, err := eng.ExecuteSQL("SELECT k FROM kv", ExecOptions{
		Workers: workers, BatchSize: batch, Txn: txn,
	})
	if err != nil {
		t.Fatalf("select (w=%d b=%d): %v", workers, batch, err)
	}
	return len(res.Rows)
}

// TestTxnSnapshotScanMatrix checks snapshot repeatability through
// every scan pipeline shape: a transaction begun before a concurrent
// committed insert must keep seeing the old row count at workers 1/4
// and batch sizes 1/64/1024, serial and parallel alike.
func TestTxnSnapshotScanMatrix(t *testing.T) {
	const seed = 200
	for _, withIndex := range []bool{false, true} {
		name := "seqscan"
		if withIndex {
			name = "indexscan"
		}
		t.Run(name, func(t *testing.T) {
			eng, db := newTxnEngine(t, seed, withIndex)
			old := db.Txns().Begin()
			defer old.Rollback()

			// A concurrent writer inserts 50 more rows and commits.
			writer := db.Txns().Begin()
			if _, err := eng.ExecTxn("INSERT INTO kv VALUES (900, 'new')", writer); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < 50; i++ {
				if _, err := eng.ExecTxn(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'new')", 900+i), writer); err != nil {
					t.Fatal(err)
				}
			}
			if err := writer.Commit(); err != nil {
				t.Fatal(err)
			}
			fresh := db.Txns().Begin()
			defer fresh.Rollback()

			for _, workers := range []int{1, 4} {
				for _, batch := range []int{1, 64, 1024} {
					t.Run(fmt.Sprintf("w%d_b%d", workers, batch), func(t *testing.T) {
						if got := countRows(t, eng, old, workers, batch); got != seed {
							t.Fatalf("old snapshot sees %d rows, want %d", got, seed)
						}
						if got := countRows(t, eng, fresh, workers, batch); got != seed+50 {
							t.Fatalf("fresh snapshot sees %d rows, want %d", got, seed+50)
						}
					})
				}
			}

			// Index-path point reads inside the old snapshot: a post-
			// snapshot row is invisible even though its index entry exists.
			if withIndex {
				res, err := eng.ExecTxn("SELECT v FROM kv WHERE k = 900", old)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Rows) != 0 {
					t.Fatalf("old snapshot sees post-snapshot row via index: %v", res.Rows)
				}
				res, err = eng.ExecTxn("SELECT v FROM kv WHERE k = 900", fresh)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Rows) != 1 {
					t.Fatalf("fresh snapshot misses committed row via index: %v", res.Rows)
				}
			}
		})
	}
}

// TestTxnDMLVisibility drives UPDATE/DELETE through the engine inside
// transactions and checks read-own-writes, rollback restoration and
// post-commit visibility (with and without an index on the filtered
// column).
func TestTxnDMLVisibility(t *testing.T) {
	for _, withIndex := range []bool{false, true} {
		name := "seqscan"
		if withIndex {
			name = "indexscan"
		}
		t.Run(name, func(t *testing.T) {
			eng, db := newTxnEngine(t, 10, withIndex)

			// UPDATE inside a txn: self sees the new value, others the old.
			t1 := db.Txns().Begin()
			if _, err := eng.ExecTxn("UPDATE kv SET v = 'changed' WHERE k = 3", t1); err != nil {
				t.Fatal(err)
			}
			get := func(txn *storage.Txn) string {
				res, err := eng.ExecTxn("SELECT v FROM kv WHERE k = 3", txn)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Rows) != 1 {
					t.Fatalf("k=3 has %d visible rows, want 1: %v", len(res.Rows), res.Rows)
				}
				return res.Rows[0][0].Str
			}
			if got := get(t1); got != "changed" {
				t.Fatalf("own update invisible: %q", got)
			}
			other := db.Txns().Begin()
			if got := get(other); got != "seed-3" {
				t.Fatalf("uncommitted update leaked: %q", got)
			}
			other.Rollback()
			if err := t1.Rollback(); err != nil {
				t.Fatal(err)
			}
			after := db.Txns().Begin()
			if got := get(after); got != "seed-3" {
				t.Fatalf("rollback did not restore: %q", got)
			}
			after.Rollback()

			// DELETE then commit: gone for new snapshots.
			t2 := db.Txns().Begin()
			res, err := eng.ExecTxn("DELETE FROM kv WHERE k = 7", t2)
			if err != nil {
				t.Fatal(err)
			}
			if res.Affected != 1 {
				t.Fatalf("delete affected %d, want 1", res.Affected)
			}
			if err := t2.Commit(); err != nil {
				t.Fatal(err)
			}
			t3 := db.Txns().Begin()
			defer t3.Rollback()
			sel, err := eng.ExecTxn("SELECT v FROM kv WHERE k = 7", t3)
			if err != nil {
				t.Fatal(err)
			}
			if len(sel.Rows) != 0 {
				t.Fatalf("deleted row still visible: %v", sel.Rows)
			}
			if got := countRows(t, eng, t3, 1, 0); got != 9 {
				t.Fatalf("row count after delete = %d, want 9", got)
			}
		})
	}
}

// TestTxnWriteConflictThroughEngine: two transactions UPDATE the same
// row; the second claim fails with ErrWriteConflict.
func TestTxnWriteConflictThroughEngine(t *testing.T) {
	eng, db := newTxnEngine(t, 5, false)
	t1, t2 := db.Txns().Begin(), db.Txns().Begin()
	defer t1.Rollback()
	defer t2.Rollback()
	if _, err := eng.ExecTxn("UPDATE kv SET v = 'a' WHERE k = 2", t1); err != nil {
		t.Fatal(err)
	}
	_, err := eng.ExecTxn("UPDATE kv SET v = 'b' WHERE k = 2", t2)
	if !errors.Is(err, storage.ErrWriteConflict) {
		t.Fatalf("concurrent update err = %v, want ErrWriteConflict", err)
	}
}

// TestTxnDDLRejected: catalog changes are not versioned, so DDL inside
// an explicit transaction must fail rather than half-commit.
func TestTxnDDLRejected(t *testing.T) {
	eng, db := newTxnEngine(t, 1, false)
	txn := db.Txns().Begin()
	defer txn.Rollback()
	for _, sql := range []string{
		"CREATE TABLE other (x INT)",
		"CREATE INDEX ON kv (k)",
		"ANALYZE kv",
	} {
		if _, err := eng.ExecTxn(sql, txn); err == nil {
			t.Fatalf("%s inside txn succeeded, want error", sql)
		}
	}
}

// TestTxnControlNeedsSession: BEGIN/COMMIT/ROLLBACK parse but cannot
// execute on the bare engine (they need a session's transaction
// stream).
func TestTxnControlNeedsSession(t *testing.T) {
	eng, _ := newTxnEngine(t, 1, false)
	for _, sql := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		if _, err := eng.Exec(sql); err == nil {
			t.Fatalf("%s on bare engine succeeded, want error", sql)
		}
	}
}

package query

import (
	"fmt"
	"testing"

	"github.com/adm-project/adm/internal/trace"
)

// BenchmarkPlanMultiJoin measures greedy planning of a 5-table chain
// (parse excluded): the tentpole target is tens of microseconds per
// plan, allocation-light, at O(n²) in the table count.
func BenchmarkPlanMultiJoin(b *testing.B) {
	e := NewEngine(NewCatalog(64), trace.New(), nil)
	for i := 0; i < 5; i++ {
		if _, err := e.Exec(fmt.Sprintf("CREATE TABLE t%d (a INT, b INT)", i)); err != nil {
			b.Fatal(err)
		}
		if err := e.cat.SetStats(fmt.Sprintf("t%d", i), TableStats{
			Rows: 100 * (i + 1), Distinct: map[string]int{"a": 50, "b": 50}}); err != nil {
			b.Fatal(err)
		}
	}
	sql := "SELECT * FROM t0 JOIN t1 ON t0.b = t1.a JOIN t2 ON t1.b = t2.a" +
		" JOIN t3 ON t2.b = t3.a JOIN t4 ON t3.b = t4.a WHERE t0.a = 7"
	st := MustParse(sql).(*SelectStmt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.planSelect(st, nil); err != nil {
			b.Fatal(err)
		}
	}
}

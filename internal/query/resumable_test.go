package query

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// replicaEngines builds two engines with identical table contents
// (the replicated data components of §1) and one with divergent
// contents.
func replicaEngines(t *testing.T, rows int) (a, b, diverged *Engine) {
	if t != nil {
		t.Helper()
	}
	mk := func(tweak bool) *Engine {
		e := NewEngine(NewCatalog(128), trace.New(), nil)
		e.MustExec("CREATE TABLE m (k INT, v FLOAT)")
		for i := 0; i < rows; i++ {
			v := float64(i % 50)
			if tweak && i == rows/3 {
				v = 999 // the divergent replica disagrees on one row
			}
			e.MustExec(fmt.Sprintf("INSERT INTO m VALUES (%d, %g)", i, v))
		}
		return e
	}
	return mk(false), mk(false), mk(true)
}

func TestResumableAggCompletesLikeSQL(t *testing.T) {
	e, _, _ := replicaEngines(t, 500)
	q, err := NewResumableAgg(e.Catalog(), "m", "v", nil)
	if err != nil {
		t.Fatal(err)
	}
	for !q.Done() {
		q.Step(37)
	}
	res := q.Result()
	want := e.MustExec("SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM m").Rows[0]
	if res.Count != want[0].Int || res.Sum != want[1].Float ||
		res.Avg != want[2].Float || res.Min != want[3].Float || res.Max != want[4].Float {
		t.Fatalf("resumable %+v vs sql %v", res, want)
	}
}

func TestResumableAggWithPredicate(t *testing.T) {
	e, _, _ := replicaEngines(t, 300)
	where := []Pred{{Col: ColRef{Col: "k"}, Op: OpLT, Lit: storage.IntValue(100)}}
	q, err := NewResumableAgg(e.Catalog(), "m", "v", where)
	if err != nil {
		t.Fatal(err)
	}
	q.Step(1 << 30)
	want := e.MustExec("SELECT COUNT(*), SUM(v) FROM m WHERE k < 100").Rows[0]
	res := q.Result()
	if res.Count != want[0].Int || res.Sum != want[1].Float {
		t.Fatalf("res %+v vs %v", res, want)
	}
}

func TestResumableAggErrors(t *testing.T) {
	e, _, _ := replicaEngines(t, 10)
	if _, err := NewResumableAgg(e.Catalog(), "nope", "v", nil); err == nil {
		t.Fatal("unknown table")
	}
	if _, err := NewResumableAgg(e.Catalog(), "m", "zz", nil); err == nil {
		t.Fatal("unknown column")
	}
}

func TestQueryJumpsToAnotherDevice(t *testing.T) {
	// The §1 story: device A dies at 40% of the scan; the State
	// Manager's last safe-point snapshot restores onto device B's
	// replica and the query finishes with the exact answer.
	devA, devB, _ := replicaEngines(t, 1000)
	qa, err := NewResumableAgg(devA.Catalog(), "m", "v", nil)
	if err != nil {
		t.Fatal(err)
	}
	sm := adapt.NewStateManager(nil, nil)
	checkpointEvery := 64
	for qa.Position() < 400 {
		qa.Step(checkpointEvery)
		if err := sm.Capture("query-42", qa); err != nil {
			t.Fatal(err)
		}
	}
	// Device A dies here. Resume on B from the last snapshot.
	qb, err := NewResumableAgg(devB.Catalog(), "m", "v", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Restore("query-42", qb); err != nil {
		t.Fatal(err)
	}
	if qb.Position() != qa.Position() {
		t.Fatalf("resume position %d != %d", qb.Position(), qa.Position())
	}
	for !qb.Done() {
		qb.Step(128)
	}
	want := devB.MustExec("SELECT COUNT(*), SUM(v) FROM m").Rows[0]
	res := qb.Result()
	if res.Count != want[0].Int || res.Sum != want[1].Float {
		t.Fatalf("migrated result %+v vs %v", res, want)
	}
}

func TestRestoreRejectsDivergentReplica(t *testing.T) {
	devA, _, devBad := replicaEngines(t, 900)
	qa, _ := NewResumableAgg(devA.Catalog(), "m", "v", nil)
	qa.Step(600) // past the divergent row at 300
	snap, err := qa.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	qb, _ := NewResumableAgg(devBad.Catalog(), "m", "v", nil)
	err = qb.RestoreState(snap)
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("divergent replica accepted: %v", err)
	}
}

func TestRestoreRejectsWrongShape(t *testing.T) {
	devA, devB, _ := replicaEngines(t, 50)
	qa, _ := NewResumableAgg(devA.Catalog(), "m", "v", nil)
	qa.Step(10)
	snap, _ := qa.CaptureState()

	// Wrong table.
	devB.MustExec("CREATE TABLE other (k INT, v FLOAT)")
	devB.MustExec("INSERT INTO other VALUES (1, 1.0)")
	qOther, _ := NewResumableAgg(devB.Catalog(), "other", "v", nil)
	if err := qOther.RestoreState(snap); err == nil {
		t.Fatal("wrong table accepted")
	}
	// Wrong column.
	qK, _ := NewResumableAgg(devB.Catalog(), "m", "k", nil)
	if err := qK.RestoreState(snap); err == nil {
		t.Fatal("wrong column accepted")
	}
	// Garbage bytes.
	qb, _ := NewResumableAgg(devB.Catalog(), "m", "v", nil)
	if err := qb.RestoreState([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Snapshot beyond replica size.
	small := NewEngine(NewCatalog(64), nil, nil)
	small.MustExec("CREATE TABLE m (k INT, v FLOAT)")
	small.MustExec("INSERT INTO m VALUES (0, 0.0)")
	qs, _ := NewResumableAgg(small.Catalog(), "m", "v", nil)
	if err := qs.RestoreState(snap); err == nil {
		t.Fatal("oversized snapshot accepted")
	}
}

func TestResumableAggIsStateful(t *testing.T) {
	// It must satisfy the component.Stateful contract so the State
	// Manager and Migrate can move it.
	var _ component.Stateful = (*ResumableAgg)(nil)
}

// Property: for any split point, capture-at-k + restore + finish
// equals the uninterrupted run.
func TestResumeAnywhereProperty(t *testing.T) {
	devA, devB, _ := replicaEngines(nil, 400)
	f := func(cutRaw uint16) bool {
		cut := int(cutRaw) % 401
		qa, err := NewResumableAgg(devA.Catalog(), "m", "v", nil)
		if err != nil {
			return false
		}
		qa.Step(cut)
		snap, err := qa.CaptureState()
		if err != nil {
			return false
		}
		qb, err := NewResumableAgg(devB.Catalog(), "m", "v", nil)
		if err != nil {
			return false
		}
		if err := qb.RestoreState(snap); err != nil {
			return false
		}
		for !qb.Done() {
			qb.Step(97)
		}
		whole, err := NewResumableAgg(devA.Catalog(), "m", "v", nil)
		if err != nil {
			return false
		}
		whole.Step(1 << 30)
		return qb.Result() == whole.Result()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

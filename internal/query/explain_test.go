// Golden tests for the plan rendering: the chosen join order, build
// sides and per-scan/per-join estimates are pinned exactly, so any
// planner change shows up as a reviewable diff, and the post-execution
// adaptation summary appended by the adaptive executors is pinned too.
package query

import (
	"fmt"
	"testing"
)

// explainEngine builds three chained tables with exact injected
// statistics so every estimate in the golden strings is derivable by
// hand: r(10) ← s(100) ← t(1000), V(join cols) as set below.
func explainEngine(t *testing.T) *Engine {
	t.Helper()
	e := newEngine(t)
	e.MustExec("CREATE TABLE r (id INT)")
	e.MustExec("CREATE TABLE s (id INT, rid INT)")
	e.MustExec("CREATE TABLE t (sid INT)")
	for name, st := range map[string]TableStats{
		"r": {Rows: 10, Distinct: map[string]int{"id": 10}},
		"s": {Rows: 100, Distinct: map[string]int{"id": 100, "rid": 10}},
		"t": {Rows: 1000, Distinct: map[string]int{"sid": 100}},
	} {
		if err := e.cat.SetStats(name, st); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func explainOf(t *testing.T, e *Engine, sql string) string {
	t.Helper()
	res := e.MustExec("EXPLAIN " + sql)
	if len(res.Rows) != 1 {
		t.Fatalf("explain shape: %v", res.Rows)
	}
	return res.Rows[0][0].Str
}

func TestExplainGoldenGreedyOrder(t *testing.T) {
	e := explainEngine(t)
	// Declared largest-first; greedy seeds at r (10 rows) and walks the
	// chain. |r⋈s| = 10·100/max(10,10) = 100; |⋈t| = 100·1000/max(100,100)
	// = 1000. The joined prefix is always smaller → both build left.
	got := explainOf(t, e,
		"SELECT * FROM t JOIN s ON t.sid = s.id JOIN r ON s.rid = r.id")
	want := "SeqScan(r est=10) -> HashJoin(build=left est=100) -> SeqScan(s est=100)" +
		" -> HashJoin(build=left est=1000) -> SeqScan(t est=1000)"
	if got != want {
		t.Fatalf("plan =\n  %s\nwant\n  %s", got, want)
	}
}

func TestExplainGoldenBuildRight(t *testing.T) {
	e := explainEngine(t)
	// Low-selectivity first edge: V(s.rid) dropped to 2 makes
	// |r⋈s| = 10·100/max(2,10) = 100 ... still prefix-smaller; instead
	// shrink t so the second join builds right: |prefix| = 100 > |t| = 20.
	if err := e.cat.SetStats("t", TableStats{Rows: 20, Distinct: map[string]int{"sid": 20}}); err != nil {
		t.Fatal(err)
	}
	got := explainOf(t, e,
		"SELECT * FROM t JOIN s ON t.sid = s.id JOIN r ON s.rid = r.id")
	// Greedy still seeds r; t (20 rows) attaches before s? No: t is not
	// connected to r, so s must come first; then |prefix| = 100 > 20.
	want := "SeqScan(r est=10) -> HashJoin(build=left est=100) -> SeqScan(s est=100)" +
		" -> HashJoin(build=right est=20) -> SeqScan(t est=20)"
	if got != want {
		t.Fatalf("plan =\n  %s\nwant\n  %s", got, want)
	}
}

func TestExplainGoldenPushdownAndIndex(t *testing.T) {
	e := explainEngine(t)
	e.MustExec("CREATE INDEX ON s (id)")
	// WHERE s.id = 5 → index path on s, selectivity 1/V(id) = 1/100 →
	// est 1. Greedy seeds s now (1 < 10): |s⋈r| = 1·10/10 = 1 (floor);
	// |⋈t| = 1·1000/100 = 10.
	got := explainOf(t, e,
		"SELECT * FROM t JOIN s ON t.sid = s.id JOIN r ON s.rid = r.id WHERE s.id = 5")
	want := "IndexScan(s.id est=1) -> HashJoin(build=left est=1) -> SeqScan(r est=10)" +
		" -> HashJoin(build=left est=10) -> SeqScan(t est=1000)"
	if got != want {
		t.Fatalf("plan =\n  %s\nwant\n  %s", got, want)
	}
}

func TestExplainGoldenAdaptationSummary(t *testing.T) {
	e := scenario3Engine(t)
	st := MustParse(scenario3SQL).(*SelectStmt)
	res, rep, err := e.ExecSelectAdaptive(st, AdaptiveConfig{Theta: 3, CheckEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replanned {
		t.Fatalf("report = %+v", rep)
	}
	// est(big) = 10 (stale), est(small) = 100: greedy seeds big, the
	// join estimate is 10·100/max(V(big.k)=10, V(small.k)=100) = 10.
	// θ·est = 30 with CheckEvery 32 → violation at row 32, swap to
	// small, and the summary records the executed order.
	want := "SeqScan(big est=10) -> HashJoin(build=left est=10) -> SeqScan(small est=100)" +
		" | adapt: replans=1 trigger=32 build=big->small order=small,big"
	if res.Plan != want {
		t.Fatalf("plan =\n  %s\nwant\n  %s", res.Plan, want)
	}
}

func TestExplainGoldenNoAdaptation(t *testing.T) {
	rep := &AdaptiveReport{}
	if got := rep.Describe(); got != "adapt: none" {
		t.Fatalf("describe = %q", got)
	}
	rep = &AdaptiveReport{Replanned: true, Replans: 2, TriggerRow: 64,
		InitialBuild: "o", FinalBuild: "c", UsedIndex: true,
		ExecutedOrder: []string{"c", "o", "n"}}
	want := "adapt: replans=2 trigger=64 build=o->c index-nl order=c,o,n"
	if got := rep.Describe(); got != want {
		t.Fatalf("describe = %q, want %q", got, want)
	}
}

// TestExplainEstimatesRenderOnEveryScan guards the satellite
// requirement that per-scan estimated rows render for every access
// path shape in one plan.
func TestExplainEstimatesRenderOnEveryScan(t *testing.T) {
	e := explainEngine(t)
	got := explainOf(t, e, "SELECT * FROM r JOIN s ON r.id = s.rid")
	want := "SeqScan(r est=10) -> HashJoin(build=left est=100) -> SeqScan(s est=100)"
	if got != want {
		t.Fatalf("plan =\n  %s\nwant\n  %s", got, want)
	}
	if fmt.Sprint(e.MustExec("EXPLAIN SELECT * FROM r").Rows[0][0].Str) != "SeqScan(r est=10)" {
		t.Fatalf("single-scan explain drifted")
	}
}

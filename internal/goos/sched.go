package goos

import (
	"errors"
	"fmt"

	"github.com/adm-project/adm/internal/machine"
)

// §5.1: "ideally any service that has nothing to do with component
// management (e.g. interrupt and device management) would be handled
// outside that core". This file provides those services as ordinary
// Go! components: a round-robin thread scheduler and an interrupt
// controller that dispatches IRQs to driver components through the
// ORB — no kernel, no ring crossing.

// ThreadID identifies a scheduled thread.
type ThreadID int

// Thread is a schedulable activity bound to a component instance: in
// Go!, running a thread *is* loading its component's segments.
type Thread struct {
	ID       ThreadID
	Name     string
	Instance *Instance
	// Body is the work one quantum executes.
	Body []machine.Instruction
	// Remaining quanta before the thread exits (0 = forever).
	Remaining int
	runnable  bool
}

// Scheduler is the round-robin scheduler component.
type Scheduler struct {
	sys     *System
	threads []*Thread
	next    ThreadID
	cursor  int
	// switches counts dispatches (each is a 3-segload context switch).
	switches uint64
}

// Scheduler errors.
var (
	ErrNoRunnable    = errors.New("goos: no runnable thread")
	ErrUnknownThread = errors.New("goos: unknown thread")
)

// NewScheduler builds a scheduler over a Go! system.
func NewScheduler(sys *System) *Scheduler {
	return &Scheduler{sys: sys, next: 1}
}

// Spawn registers a thread running body each quantum on inst's
// segments; quanta = 0 runs forever.
func (s *Scheduler) Spawn(name string, inst *Instance, body []machine.Instruction, quanta int) *Thread {
	t := &Thread{ID: s.next, Name: name, Instance: inst, Body: body, Remaining: quanta, runnable: true}
	s.next++
	s.threads = append(s.threads, t)
	return t
}

// Block marks a thread unrunnable (waiting on I/O).
func (s *Scheduler) Block(id ThreadID) error { return s.setRunnable(id, false) }

// Unblock marks a thread runnable again.
func (s *Scheduler) Unblock(id ThreadID) error { return s.setRunnable(id, true) }

func (s *Scheduler) setRunnable(id ThreadID, v bool) error {
	for _, t := range s.threads {
		if t.ID == id {
			t.runnable = v
			return nil
		}
	}
	return fmt.Errorf("%w: %d", ErrUnknownThread, id)
}

// Runnable counts runnable threads.
func (s *Scheduler) Runnable() int {
	n := 0
	for _, t := range s.threads {
		if t.runnable {
			n++
		}
	}
	return n
}

// Switches reports context switches performed.
func (s *Scheduler) Switches() uint64 { return s.switches }

// Tick dispatches one quantum to the next runnable thread: the
// context switch is the SISR segment reload (3 cycles) plus a few
// bookkeeping instructions — there is no kernel to enter. Returns the
// thread that ran.
func (s *Scheduler) Tick() (*Thread, error) {
	n := len(s.threads)
	if n == 0 {
		return nil, ErrNoRunnable
	}
	for probe := 0; probe < n; probe++ {
		t := s.threads[(s.cursor+probe)%n]
		if !t.runnable {
			continue
		}
		s.cursor = (s.cursor + probe + 1) % n
		seq := machine.NewSeq().
			Load("pick-thread", 0, 2). // run-queue entry
			ALU("advance-cursor", 2).  //
			SegLoad("cs", t.Instance.Type.CodeSel).
			SegLoad("ds", t.Instance.DataSel).
			SegLoad("ss", t.Instance.DataSel)
		if err := s.sys.M.Run(seq.Build()); err != nil {
			return nil, fmt.Errorf("goos: dispatch %s: %w", t.Name, err)
		}
		if err := s.sys.M.Run(t.Body); err != nil {
			return nil, fmt.Errorf("goos: thread %s: %w", t.Name, err)
		}
		s.switches++
		if t.Remaining > 0 {
			t.Remaining--
			if t.Remaining == 0 {
				t.runnable = false
			}
		}
		return t, nil
	}
	return nil, ErrNoRunnable
}

// RunQuanta executes n quanta; returns per-thread dispatch counts.
func (s *Scheduler) RunQuanta(n int) (map[ThreadID]int, error) {
	counts := map[ThreadID]int{}
	for i := 0; i < n; i++ {
		t, err := s.Tick()
		if err != nil {
			if errors.Is(err, ErrNoRunnable) {
				return counts, nil
			}
			return counts, err
		}
		counts[t.ID]++
	}
	return counts, nil
}

// ---------------------------------------------------------------------------
// Interrupt controller component.

// IRQ identifies an interrupt line.
type IRQ int

// InterruptController dispatches device interrupts to driver
// components via the ORB — interrupt management outside the core,
// exactly as §5.1 asks.
type InterruptController struct {
	sys      *System
	handlers map[IRQ]InterfaceID
	// raised/handled count activity.
	raised  uint64
	handled uint64
}

// ErrNoHandler is returned for an unregistered IRQ.
var ErrNoHandler = errors.New("goos: no handler for irq")

// NewInterruptController builds the controller.
func NewInterruptController(sys *System) *InterruptController {
	return &InterruptController{sys: sys, handlers: map[IRQ]InterfaceID{}}
}

// RegisterHandler routes an IRQ to a driver's ORB interface. Swapping
// the registration is how Scenario 2 replaces the Ethernet driver
// with the wireless one.
func (ic *InterruptController) RegisterHandler(irq IRQ, iface InterfaceID) {
	ic.handlers[irq] = iface
}

// UnregisterHandler removes a route.
func (ic *InterruptController) UnregisterHandler(irq IRQ) {
	delete(ic.handlers, irq)
}

// Raise delivers an interrupt: an ORB invocation of the driver
// component (the controller itself is the calling instance). Returns
// the dispatch cost.
func (ic *InterruptController) Raise(irq IRQ, caller *Instance) (InvokeResult, error) {
	ic.raised++
	iface, ok := ic.handlers[irq]
	if !ok {
		return InvokeResult{}, fmt.Errorf("%w: %d", ErrNoHandler, irq)
	}
	res, err := ic.sys.ORB().Invoke(caller, iface)
	if err != nil {
		return res, fmt.Errorf("goos: irq %d: %w", irq, err)
	}
	ic.handled++
	return res, nil
}

// Stats reports (raised, handled).
func (ic *InterruptController) Stats() (raised, handled uint64) {
	return ic.raised, ic.handled
}

// ---------------------------------------------------------------------------
// The "Database Machine" path: getpage down to the metal.

// GetPageCost compares the per-getpage control-transfer overhead of a
// DB function running on Go! (one ORB RPC into the buffer-manager
// component) against the same operation crossing a monolithic
// kernel's syscall boundary (one read(2)-style trap) — the §6 claim
// that componentisation "tailor[s] the architecture down to the
// metal", making the system "effectively a Database Machine".
type GetPageCost struct {
	GoCycles      uint64
	SyscallCycles uint64
	PagesScanned  int
}

// Ratio is syscall/Go! overhead.
func (g GetPageCost) Ratio() float64 {
	if g.GoCycles == 0 {
		return 0
	}
	return float64(g.SyscallCycles) / float64(g.GoCycles)
}

// MeasureGetPage prices an n-page sequential scan both ways. The page
// processing body (predicate evaluation etc.) is identical; only the
// control transfer differs.
func MeasureGetPage(n int) (GetPageCost, error) {
	// Go! side: buffer manager as a component; getpage = ORB RPC.
	sys := NewSystem(64)
	text := machine.NewSeq().ALU("logic", 8).Build()
	if _, err := sys.LoadType("dbfn.t", text); err != nil {
		return GetPageCost{}, err
	}
	if _, err := sys.LoadType("bufmgr.t", text); err != nil {
		return GetPageCost{}, err
	}
	dbfn, err := sys.NewInstance("dbfn", "dbfn.t", 4096)
	if err != nil {
		return GetPageCost{}, err
	}
	bufmgr, err := sys.NewInstance("bufmgr", "bufmgr.t", 65535)
	if err != nil {
		return GetPageCost{}, err
	}
	getpage := sys.ORB().Register(bufmgr, 1, nil)

	sys.M.ResetCounters()
	for i := 0; i < n; i++ {
		if _, err := sys.ORB().Invoke(dbfn, getpage); err != nil {
			return GetPageCost{}, err
		}
	}
	goCycles := sys.M.Cycles()

	// Monolithic side: each getpage is a trap into the kernel's
	// buffer cache (short path: no context switch, warm cache).
	m := machine.New(machine.DefaultCostModel(), 8)
	m.SetMode(machine.User)
	for i := 0; i < n; i++ {
		seq := machine.NewSeq().
			Trap("sys_read", 0x80).
			ALU("fd-lookup", 40).
			ALU("bufcache-lookup", 60).
			Load("copyout", 0, 32).
			Store("copyout", 0, 32).
			Iret("sysret")
		if err := m.Run(seq.Build()); err != nil {
			return GetPageCost{}, err
		}
	}
	return GetPageCost{GoCycles: goCycles, SyscallCycles: m.Cycles(), PagesScanned: n}, nil
}

package goos

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/adm-project/adm/internal/machine"
)

func userText(n int) []machine.Instruction {
	return machine.NewSeq().ALU("logic", n).Build()
}

func TestScannerAcceptsCleanText(t *testing.T) {
	rep := Scanner{}.Scan(userText(10))
	if !rep.OK() || rep.Instructions != 10 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestScannerRejectsEveryPrivilegedClass(t *testing.T) {
	privOps := []machine.OpClass{
		machine.OpSegLoad, machine.OpPrivCtl, machine.OpIO,
		machine.OpTLBFlush, machine.OpPTSwitch, machine.OpIret,
	}
	for _, op := range privOps {
		text := append(userText(3), machine.Instruction{Op: op, Name: "evil"})
		rep := Scanner{}.Scan(text)
		if rep.OK() {
			t.Errorf("%s: scanner accepted privileged text", op)
			continue
		}
		if rep.Offenses[0].Index != 3 {
			t.Errorf("%s: offense index = %d, want 3", op, rep.Offenses[0].Index)
		}
	}
}

func TestScannerExemptionForORB(t *testing.T) {
	text := []machine.Instruction{{Op: machine.OpSegLoad, Name: "mov ds"}}
	if rep := (Scanner{AllowPrivileged: true}).Scan(text); !rep.OK() {
		t.Fatal("exempt scanner should accept privileged text")
	}
}

// Property: the scanner accepts a text iff it contains no privileged
// instruction — over arbitrary op mixes.
func TestScannerSoundAndCompleteProperty(t *testing.T) {
	allOps := []machine.OpClass{
		machine.OpALU, machine.OpLoad, machine.OpStore, machine.OpBranch,
		machine.OpCall, machine.OpRet, machine.OpSegLoad, machine.OpTrap,
		machine.OpIret, machine.OpPrivCtl, machine.OpIO, machine.OpTLBFlush,
		machine.OpPTSwitch, machine.OpCacheProbe,
	}
	f := func(picks []uint8) bool {
		text := make([]machine.Instruction, len(picks))
		hasPriv := false
		for i, p := range picks {
			op := allOps[int(p)%len(allOps)]
			text[i] = machine.Instruction{Op: op}
			if op.Privileged() {
				hasPriv = true
			}
		}
		rep := Scanner{}.Scan(text)
		return rep.OK() == !hasPriv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTypeRejectsPrivilegedComponent(t *testing.T) {
	sys := NewSystem(16)
	text := append(userText(2), machine.Instruction{Op: machine.OpPrivCtl, Name: "cli"})
	_, err := sys.LoadType("rogue", text)
	var se *ScanError
	if !errors.As(err, &se) {
		t.Fatalf("want ScanError, got %v", err)
	}
	if se.Component != "rogue" {
		t.Errorf("component = %q", se.Component)
	}
}

func TestLoadTypeDuplicate(t *testing.T) {
	sys := NewSystem(16)
	if _, err := sys.LoadType("a", userText(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LoadType("a", userText(1)); !errors.Is(err, ErrDuplicateType) {
		t.Fatalf("want ErrDuplicateType, got %v", err)
	}
}

func TestInstanceLifecycle(t *testing.T) {
	sys := NewSystem(16)
	if _, err := sys.LoadType("t", userText(4)); err != nil {
		t.Fatal(err)
	}
	inst, err := sys.NewInstance("i1", "t", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := sys.Instance("i1"); !ok || got != inst {
		t.Fatal("instance lookup failed")
	}
	if _, err := sys.NewInstance("i1", "t", 1024); !errors.Is(err, ErrDuplicateInstance) {
		t.Fatalf("want ErrDuplicateInstance, got %v", err)
	}
	if _, err := sys.NewInstance("i2", "zzz", 1024); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
	if err := sys.Unload("i1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Instance("i1"); ok {
		t.Fatal("instance survived unload")
	}
	if err := sys.Unload("i1"); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("want ErrUnknownInstance, got %v", err)
	}
}

func TestInterfaceEntryIs32Bytes(t *testing.T) {
	var e InterfaceEntry
	if e.Size() != 32 {
		t.Fatalf("interface entry = %d bytes, want 32 (paper §5.1)", e.Size())
	}
	// The declared field widths must actually sum to 32.
	sum := 4 + 2 + 2 + 4 + 2 + 2 + 8 + 4 + 4
	if sum != 32 {
		t.Fatalf("field widths sum to %d", sum)
	}
}

func TestORBInvokeCostIs73Cycles(t *testing.T) {
	g, err := NewGoPath()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.RPC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 73 {
		t.Fatalf("Go! null RPC = %d cycles, want 73 (Table 1)", res.Cycles)
	}
}

func TestORBInvokeIsDeterministic(t *testing.T) {
	g, _ := NewGoPath()
	first, _ := g.RPC(nil)
	for i := 0; i < 100; i++ {
		r, err := g.RPC(nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != first.Cycles {
			t.Fatalf("iteration %d: %d cycles, want %d", i, r.Cycles, first.Cycles)
		}
	}
}

func TestORBInvokeUnknownInterface(t *testing.T) {
	g, _ := NewGoPath()
	if _, err := g.sys.ORB().Invoke(g.caller, 999); !errors.Is(err, ErrUnknownInterface) {
		t.Fatalf("want ErrUnknownInterface, got %v", err)
	}
}

func TestORBInvokeRevokedCallee(t *testing.T) {
	g, _ := NewGoPath()
	if err := g.sys.Unload("callee"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RPC(nil); !errors.Is(err, ErrRevoked) {
		t.Fatalf("want ErrRevoked, got %v", err)
	}
}

func TestORBHandlerRuns(t *testing.T) {
	sys := NewSystem(32)
	_, _ = sys.LoadType("t", userText(2))
	caller, _ := sys.NewInstance("c", "t", 64)
	callee, _ := sys.NewInstance("s", "t", 64)
	ran := false
	id := sys.ORB().Register(callee, 0, func() error { ran = true; return nil })
	if _, err := sys.ORB().Invoke(caller, id); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("handler did not run")
	}
}

func TestORBHandlerErrorPropagates(t *testing.T) {
	sys := NewSystem(32)
	_, _ = sys.LoadType("t", userText(2))
	caller, _ := sys.NewInstance("c", "t", 64)
	callee, _ := sys.NewInstance("s", "t", 64)
	boom := errors.New("boom")
	id := sys.ORB().Register(callee, 0, func() error { return boom })
	if _, err := sys.ORB().Invoke(caller, id); !errors.Is(err, boom) {
		t.Fatalf("want handler error, got %v", err)
	}
}

func TestORBUnregister(t *testing.T) {
	sys := NewSystem(32)
	_, _ = sys.LoadType("t", userText(2))
	caller, _ := sys.NewInstance("c", "t", 64)
	callee, _ := sys.NewInstance("s", "t", 64)
	id := sys.ORB().Register(callee, 0, nil)
	if sys.ORB().TableBytes() != 32 {
		t.Fatalf("table bytes = %d", sys.ORB().TableBytes())
	}
	sys.ORB().Unregister(id)
	if sys.ORB().TableBytes() != 0 {
		t.Fatal("unregister did not shrink table")
	}
	if _, err := sys.ORB().Invoke(caller, id); !errors.Is(err, ErrUnknownInterface) {
		t.Fatalf("want ErrUnknownInterface after unregister, got %v", err)
	}
}

func TestTrappedAblationCostsMoreThanSISR(t *testing.T) {
	g, _ := NewGoPath()
	sisr, err := g.RPC(nil)
	if err != nil {
		t.Fatal(err)
	}
	trapped, err := g.sys.ORB().InvokeTrapped(g.caller, g.iface)
	if err != nil {
		t.Fatal(err)
	}
	if trapped.Cycles <= 4*sisr.Cycles {
		t.Fatalf("trap interposition = %d cycles vs SISR %d: expected >4× gap",
			trapped.Cycles, sisr.Cycles)
	}
}

func TestScanCostChargedOncePerLoad(t *testing.T) {
	sys := NewSystem(16)
	before := sys.ScanCycles()
	_, _ = sys.LoadType("t", userText(100))
	after := sys.ScanCycles()
	if after-before != 300 { // 3 cycles/instruction
		t.Fatalf("scan cost = %d, want 300", after-before)
	}
}

func TestTable1ShapeAndBands(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	bsd, mach, l4, gos := byName["BSD (Unix)"], byName["Mach2.5"], byName["L4"], byName["Go!"]
	// Strict ordering across the table.
	if !(bsd.Cycles > mach.Cycles && mach.Cycles > l4.Cycles && l4.Cycles > gos.Cycles) {
		t.Fatalf("ordering violated: %+v", rows)
	}
	// Each row within ±15%% of the paper's figure.
	for _, r := range rows {
		lo := float64(r.PaperCycles) * 0.85
		hi := float64(r.PaperCycles) * 1.15
		if float64(r.Cycles) < lo || float64(r.Cycles) > hi {
			t.Errorf("%s: %d cycles outside [%0.f, %0.f] (paper %d)",
				r.System, r.Cycles, lo, hi, r.PaperCycles)
		}
	}
	// Headline claims: Go! ~3 orders of magnitude under BSD; exact 73.
	if ratio := float64(bsd.Cycles) / float64(gos.Cycles); ratio < 500 {
		t.Errorf("BSD/Go! ratio = %.0f, want >500", ratio)
	}
	if gos.Cycles != 73 {
		t.Errorf("Go! = %d, want exactly 73", gos.Cycles)
	}
}

func TestMemoryFootprintTwoOrdersOfMagnitude(t *testing.T) {
	sys := NewSystem(256)
	_, _ = sys.LoadType("t", userText(4))
	for i := 0; i < 50; i++ {
		inst, err := sys.NewInstance(string(rune('a'+i%26))+string(rune('0'+i/26)), "t", 256)
		if err != nil {
			t.Fatal(err)
		}
		sys.ORB().Register(inst, 0, nil)
	}
	f := sys.Footprint()
	if f.ORBTableBytes != 50*32 {
		t.Errorf("ORB bytes = %d", f.ORBTableBytes)
	}
	if f.PageBasedBytes != 50*4096 {
		t.Errorf("page bytes = %d", f.PageBasedBytes)
	}
	if f.Ratio() < 50 {
		t.Errorf("ratio = %.1f, want ~two orders of magnitude (>50)", f.Ratio())
	}
}

func TestKernelBreakdownsNonEmpty(t *testing.T) {
	g, _ := NewGoPath()
	for _, p := range []KernelPath{DefaultBSD(), DefaultMach(), DefaultL4(), g} {
		if len(p.Breakdown()) == 0 {
			t.Errorf("%s: empty breakdown", p.Name())
		}
		if p.Name() == "" {
			t.Error("empty name")
		}
	}
}

// Property: RPC cost on every kernel path is invariant across repeated
// calls on a warm machine (the model is deterministic once the TLB is
// warm — BSD/Mach flush it themselves every time).
func TestKernelPathsDeterministicProperty(t *testing.T) {
	paths := []KernelPath{DefaultBSD(), DefaultMach(), DefaultL4()}
	for _, p := range paths {
		m := machine.New(machine.DefaultCostModel(), 16)
		first, err := p.RPC(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			r, err := p.RPC(m)
			if err != nil {
				t.Fatal(err)
			}
			if r.Cycles != first.Cycles {
				t.Errorf("%s: run %d = %d cycles, first = %d", p.Name(), i, r.Cycles, first.Cycles)
			}
		}
	}
}

// The complete SISR isolation argument, executable: a component can
// only reach memory through its own data segment (bounds-checked),
// and the only way to address another component's segment is a
// segment-register load — which the scanner rejects at load time.
func TestSISRComponentIsolation(t *testing.T) {
	sys := NewSystem(16)
	_, err := sys.LoadType("app", userText(2))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := sys.NewInstance("victim", "app", 256)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := sys.NewInstance("attacker", "app", 128)
	if err != nil {
		t.Fatal(err)
	}
	// 1. The attacker's accesses through its own segment are confined
	//    to its 128-byte limit.
	ok := machine.Instruction{Op: machine.OpLoad, Name: "own-data", Seg: attacker.DataSel, CheckSeg: true, Off: 127}
	if err := sys.M.Exec(ok); err != nil {
		t.Fatalf("own in-bounds access: %v", err)
	}
	oob := machine.Instruction{Op: machine.OpStore, Name: "own-oob", Seg: attacker.DataSel, CheckSeg: true, Off: 128}
	var f *machine.Fault
	if err := sys.M.Exec(oob); !errors.As(err, &f) || f.Kind != machine.FaultSegBounds {
		t.Fatalf("out-of-bounds store: %v", err)
	}
	// 2. Addressing the victim's segment requires loading DS with the
	//    victim's selector — a privileged instruction the SISR scanner
	//    refuses to load.
	evil := append(userText(1),
		machine.Instruction{Op: machine.OpSegLoad, Name: "mov ds, victim", Seg: victim.DataSel})
	if _, err := sys.LoadType("evil", evil); err == nil {
		t.Fatal("scanner accepted a segment-stealing component")
	}
	// 3. Even a raw checked access against the victim's selector is
	//    caught by the bounds/ownership discipline once the victim is
	//    unloaded (revocation fences dangling references).
	_ = sys.Unload("victim")
	steal := machine.Instruction{Op: machine.OpLoad, Name: "dangling", Seg: victim.DataSel, CheckSeg: true, Off: 0}
	if err := sys.M.Exec(steal); !errors.As(err, &f) || f.Kind != machine.FaultSegNotPresent {
		t.Fatalf("dangling access: %v", err)
	}
}

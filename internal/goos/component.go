package goos

import (
	"errors"
	"fmt"

	"github.com/adm-project/adm/internal/machine"
)

// BytesPerInterface is the ORB's bookkeeping cost per registered
// interface. The paper: "the space required per component is just 32
// bytes for each interface" — the InterfaceEntry layout below accounts
// for exactly that.
const BytesPerInterface = 32

// PageProtectionGranule is the smallest protection unit of a
// page-based kernel (one 4 KiB page per protection domain), used by
// the §5.1 memory comparison.
const PageProtectionGranule = 4096

// InterfaceID names a service entry point registered with the ORB.
type InterfaceID uint32

// InterfaceEntry is one ORB dispatch-table row. Field widths are
// chosen so the entry is exactly 32 bytes, matching the paper's
// figure; Size() asserts the layout.
type InterfaceEntry struct {
	ID        InterfaceID      // 4 bytes: interface identifier
	TypeSel   machine.Selector // 2 bytes: callee type (code) segment
	StackSel  machine.Selector // 2 bytes: callee stack segment
	Entry     uint32           // 4 bytes: entry-point offset in the code segment
	ArgWords  uint16           // 2 bytes: argument contract
	Flags     uint16           // 2 bytes: permission bits
	Nonce     uint64           // 8 bytes: unforgeable capability nonce
	TypeCheck uint32           // 4 bytes: expected type tag of the instance
	Reserved  uint32           // 4 bytes: padding to the 32-byte row
}

// Size returns the on-ORB size of an interface entry in bytes.
func (InterfaceEntry) Size() int { return BytesPerInterface }

// ComponentType is a Go! component type: one code segment shared by
// all instances, plus the interfaces its text exports. "The unit of
// protection in SISR is the component, which is protected through its
// own data segment and is of a given type (which has its own
// segment)."
type ComponentType struct {
	Name    string
	Text    []machine.Instruction
	CodeSel machine.Selector
	typeTag uint32
	ifaces  []InterfaceID
}

// Instance is a running component: its own data segment (the unit of
// protection) plus its type's code segment.
type Instance struct {
	Name    string
	Type    *ComponentType
	DataSel machine.Selector
	// DataBytes is the declared size of the instance data segment.
	DataBytes uint32
}

// System is a Go! machine image: the GDT-backed component space and
// the ORB. It owns the simulated machine.
type System struct {
	M       *machine.Machine
	scanner Scanner
	orb     *ORB

	types     map[string]*ComponentType
	instances map[string]*Instance
	nextTag   uint32
	scanCost  uint64
}

// Errors returned by the component loader.
var (
	ErrDuplicateType     = errors.New("goos: component type already loaded")
	ErrUnknownType       = errors.New("goos: unknown component type")
	ErrDuplicateInstance = errors.New("goos: instance name in use")
	ErrUnknownInstance   = errors.New("goos: unknown instance")
)

// NewSystem boots a Go! image on a fresh machine. There is no kernel:
// the machine starts (and stays) with SISR-scanned components and the
// ORB as the only privileged resident. gdtSlots bounds the component
// population.
func NewSystem(gdtSlots int) *System {
	s := &System{
		M:         machine.New(machine.DefaultCostModel(), gdtSlots),
		types:     make(map[string]*ComponentType),
		instances: make(map[string]*Instance),
		nextTag:   1,
	}
	s.orb = newORB(s)
	return s
}

// ORB returns the system's object request broker.
func (s *System) ORB() *ORB { return s.orb }

// ScanCycles reports the cumulative load-time scan cost charged so
// far (the SISR side of the trap-vs-scan ablation).
func (s *System) ScanCycles() uint64 { return s.scanCost }

// LoadType scans and installs a component type. A text section
// containing any privileged instruction is rejected — this is the
// entire SISR protection argument: reject at load, never trap at run.
func (s *System) LoadType(name string, text []machine.Instruction) (*ComponentType, error) {
	if _, ok := s.types[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateType, name)
	}
	rep := s.scanner.Scan(text)
	s.scanCost += uint64(s.scanner.ScanCost(text))
	if !rep.OK() {
		return nil, &ScanError{Component: name, Report: rep}
	}
	sel, err := s.M.DefineSegment(machine.SegmentDescriptor{
		Base: 0, Limit: uint32(len(text)), Kind: machine.SegCode, Present: true,
	})
	if err != nil {
		return nil, fmt.Errorf("goos: loading type %q: %w", name, err)
	}
	t := &ComponentType{Name: name, Text: text, CodeSel: sel, typeTag: s.nextTag}
	s.nextTag++
	s.types[name] = t
	return t, nil
}

// NewInstance creates a protected instance of a loaded type with its
// own data segment of dataBytes.
func (s *System) NewInstance(name, typeName string, dataBytes uint32) (*Instance, error) {
	t, ok := s.types[typeName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, typeName)
	}
	if _, ok := s.instances[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateInstance, name)
	}
	sel, err := s.M.DefineSegment(machine.SegmentDescriptor{
		Base: 0, Limit: dataBytes, Kind: machine.SegData, Present: true,
	})
	if err != nil {
		return nil, fmt.Errorf("goos: instance %q: %w", name, err)
	}
	inst := &Instance{Name: name, Type: t, DataSel: sel, DataBytes: dataBytes}
	s.instances[name] = inst
	return inst, nil
}

// Unload revokes an instance's data segment; in-flight segment loads
// against it fault with not-present, which is how the ORB fences a
// component during reconfiguration.
func (s *System) Unload(name string) error {
	inst, ok := s.instances[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInstance, name)
	}
	s.M.RevokeSegment(inst.DataSel)
	delete(s.instances, name)
	return nil
}

// Instance returns a loaded instance by name.
func (s *System) Instance(name string) (*Instance, bool) {
	i, ok := s.instances[name]
	return i, ok
}

// Type returns a loaded type by name.
func (s *System) Type(name string) (*ComponentType, bool) {
	t, ok := s.types[name]
	return t, ok
}

// MemoryFootprint reports the protection-metadata bytes of the image
// under the two models compared in §5.1: Go!'s per-interface ORB rows
// (+8-byte GDT descriptors) versus one page-granule per protection
// domain in a page-based kernel.
type MemoryFootprint struct {
	Interfaces     int
	Instances      int
	ORBTableBytes  int // 32 bytes per interface
	GDTBytes       int // 8 bytes per live descriptor
	PageBasedBytes int // 4096 per protection domain (instance)
}

// GoBytes is the total Go! protection-metadata footprint.
func (f MemoryFootprint) GoBytes() int { return f.ORBTableBytes + f.GDTBytes }

// Ratio is page-based bytes over Go! bytes — the paper claims "around
// two orders of magnitude improvement".
func (f MemoryFootprint) Ratio() float64 {
	if f.GoBytes() == 0 {
		return 0
	}
	return float64(f.PageBasedBytes) / float64(f.GoBytes())
}

// Footprint computes the current image's memory comparison.
func (s *System) Footprint() MemoryFootprint {
	return MemoryFootprint{
		Interfaces:     len(s.orb.table),
		Instances:      len(s.instances),
		ORBTableBytes:  len(s.orb.table) * BytesPerInterface,
		GDTBytes:       s.M.GDTBytes(),
		PageBasedBytes: len(s.instances) * PageProtectionGranule,
	}
}

package goos

import (
	"fmt"

	"github.com/adm-project/adm/internal/machine"
)

// KernelPath models a cross-domain RPC on one of Table 1's baseline
// operating systems as an explicit control-transfer path on the
// simulated machine. Each model is parameterised by the semantic work
// its design forces (traps, copies, scheduler passes, address-space
// switches, cache pollution); the cycle totals emerge from running
// the path, not from a hard-coded constant.
type KernelPath interface {
	// Name is the Table 1 row label.
	Name() string
	// RPC runs one null RPC (request + reply) and returns its cost.
	RPC(m *machine.Machine) (InvokeResult, error)
	// Breakdown describes the path's phases for reporting.
	Breakdown() []PathPhase
}

// PathPhase is one reported phase of a kernel path.
type PathPhase struct {
	Name  string
	Notes string
}

// ---------------------------------------------------------------------------

// BSDKernel models a 4.x-BSD-style monolithic Unix doing RPC between
// two processes over a local socket: four system calls (client write,
// client read, server read, server write), each a full trap with
// syscall-layer work and data copies; scheduler passes; full
// address-space switches with TLB/Cache refill, and the cache
// pollution of pushing a multi-KB kernel path through a cold cache.
// This is the "55,000 cycles" row.
type BSDKernel struct {
	// MsgWords is the payload copied in/out per syscall.
	MsgWords int
	// SyscallLayerOps is dispatch + fd lookup + sockbuf management
	// per syscall.
	SyscallLayerOps int
	// SchedulerOps is one scheduler pass (queue scan + pick).
	SchedulerOps int
	// ContextSwitches is the number of full address-space switches.
	ContextSwitches int
	// PollutionProbes is the count of cache-missing references the
	// kernel path + wakeup + protocol layers touch end to end.
	PollutionProbes int
}

// DefaultBSD returns the calibration used for Table 1: 64-word
// messages, four syscalls, four context switches and the measured
// dominance of cache effects on mid-90s hardware.
func DefaultBSD() *BSDKernel {
	return &BSDKernel{
		MsgWords:        64,
		SyscallLayerOps: 120,
		SchedulerOps:    150,
		ContextSwitches: 4,
		PollutionProbes: 2200,
	}
}

// Name implements KernelPath.
func (k *BSDKernel) Name() string { return "BSD (Unix)" }

// Breakdown implements KernelPath.
func (k *BSDKernel) Breakdown() []PathPhase {
	return []PathPhase{
		{"4×trap", "write/read on each side, ring crossings"},
		{"syscall layer", "dispatch, fd and socket-buffer management"},
		{"data copies", fmt.Sprintf("copyin/copyout %d words per syscall", k.MsgWords)},
		{"scheduler", "sleep/wakeup and run-queue passes"},
		{"context switch", "CR3 reload, full TLB flush + refill"},
		{"cache pollution", fmt.Sprintf("%d cold references across the path", k.PollutionProbes)},
	}
}

// RPC implements KernelPath.
func (k *BSDKernel) RPC(m *machine.Machine) (InvokeResult, error) {
	start, startIn := m.Cycles(), m.Instructions()
	m.SetMode(machine.User)
	// Four syscalls: each trap + syscall work + copy + iret.
	for i := 0; i < 4; i++ {
		seq := machine.NewSeq().
			Trap(fmt.Sprintf("syscall-%d", i), 0x80).
			ALU("syscall-layer", k.SyscallLayerOps).
			Load("copy", 0, k.MsgWords).
			Store("copy", 0, k.MsgWords).
			ALU("sched-pass", k.SchedulerOps).
			Iret(fmt.Sprintf("sysret-%d", i))
		if err := m.Run(seq.Build()); err != nil {
			return InvokeResult{}, err
		}
	}
	// Address-space switches between client and server.
	m.SetMode(machine.Kernel)
	for i := 0; i < k.ContextSwitches; i++ {
		seq := machine.NewSeq().
			Store("save-proc-state", 0, 40).
			PTSwitch("cr3-reload", uint32(i%2)+1).
			Load("restore-proc-state", 0, 40)
		if err := m.Run(seq.Build()); err != nil {
			return InvokeResult{}, err
		}
	}
	// Cache pollution across the whole path.
	if err := m.Run(machine.NewSeq().Probe("cold-path", 0, k.PollutionProbes).Build()); err != nil {
		return InvokeResult{}, err
	}
	return InvokeResult{Cycles: m.Cycles() - start, Instructions: m.Instructions() - startIn}, nil
}

// ---------------------------------------------------------------------------

// MachKernel models Mach 2.5 RPC: two combined send/receive mach_msg
// traps, port-rights translation, typed message copy, and two
// address-space switches. The microkernel shortens the in-kernel path
// but keeps the full VM switch — the "3,000 cycles" row.
type MachKernel struct {
	MsgWords     int
	PortOps      int // port name lookup + rights checks per msg
	HeaderOps    int // typed-descriptor parsing per msg
	ASCSwitches  int
	SwitchStates int // words saved/restored per switch
}

// DefaultMach returns Table 1 calibration.
func DefaultMach() *MachKernel {
	return &MachKernel{MsgWords: 64, PortOps: 110, HeaderOps: 70, ASCSwitches: 2, SwitchStates: 30}
}

// Name implements KernelPath.
func (k *MachKernel) Name() string { return "Mach2.5" }

// Breakdown implements KernelPath.
func (k *MachKernel) Breakdown() []PathPhase {
	return []PathPhase{
		{"2×mach_msg trap", "combined send/receive"},
		{"port machinery", "name → right translation, queue locks"},
		{"typed copy", "header parse + body copyin/copyout"},
		{"VM switch", "pmap activate: CR3 + TLB refill"},
	}
}

// RPC implements KernelPath.
func (k *MachKernel) RPC(m *machine.Machine) (InvokeResult, error) {
	start, startIn := m.Cycles(), m.Instructions()
	m.SetMode(machine.User)
	for i := 0; i < 2; i++ {
		seq := machine.NewSeq().
			Trap(fmt.Sprintf("mach_msg-%d", i), 0x40).
			ALU("port-machinery", k.PortOps).
			ALU("typed-header", k.HeaderOps).
			Load("body-copy", 0, k.MsgWords).
			Store("body-copy", 0, k.MsgWords).
			Iret(fmt.Sprintf("msgret-%d", i))
		if err := m.Run(seq.Build()); err != nil {
			return InvokeResult{}, err
		}
	}
	m.SetMode(machine.Kernel)
	for i := 0; i < k.ASCSwitches; i++ {
		seq := machine.NewSeq().
			Store("thread-save", 0, k.SwitchStates).
			PTSwitch("pmap-activate", uint32(i%2)+3).
			Load("thread-restore", 0, k.SwitchStates)
		if err := m.Run(seq.Build()); err != nil {
			return InvokeResult{}, err
		}
	}
	return InvokeResult{Cycles: m.Cycles() - start, Instructions: m.Instructions() - startIn}, nil
}

// ---------------------------------------------------------------------------

// L4Kernel models L4's aggressively minimised IPC: two traps, message
// transfer in registers, direct thread switch, and the small-address-
// space trick (segment-based relocation) that avoids the TLB flush a
// CR3 reload would cost — the "665 cycles" row.
type L4Kernel struct {
	ValidateOps  int // dest thread-id validation per IPC
	MsgRegOps    int // register-message transfer per IPC
	ThreadSwitch int // direct-switch bookkeeping per IPC
	SmallSpaceOp int // segment-relocation ops per IPC (no TLB flush)
}

// DefaultL4 returns Table 1 calibration.
func DefaultL4() *L4Kernel {
	return &L4Kernel{ValidateOps: 40, MsgRegOps: 24, ThreadSwitch: 60, SmallSpaceOp: 21}
}

// Name implements KernelPath.
func (k *L4Kernel) Name() string { return "L4" }

// Breakdown implements KernelPath.
func (k *L4Kernel) Breakdown() []PathPhase {
	return []PathPhase{
		{"2×trap", "call + reply-and-wait"},
		{"validate", "thread-id and rights checks"},
		{"register transfer", "message stays in registers"},
		{"direct switch", "no scheduler pass; small-space segment reload avoids TLB flush"},
	}
}

// RPC implements KernelPath.
func (k *L4Kernel) RPC(m *machine.Machine) (InvokeResult, error) {
	start, startIn := m.Cycles(), m.Instructions()
	m.SetMode(machine.User)
	for i := 0; i < 2; i++ {
		seq := machine.NewSeq().
			Trap(fmt.Sprintf("ipc-%d", i), 0x30).
			ALU("validate", k.ValidateOps).
			ALU("msg-regs", k.MsgRegOps).
			ALU("direct-switch", k.ThreadSwitch).
			ALU("small-space", k.SmallSpaceOp).
			Iret(fmt.Sprintf("ipcret-%d", i))
		if err := m.Run(seq.Build()); err != nil {
			return InvokeResult{}, err
		}
	}
	m.SetMode(machine.Kernel)
	return InvokeResult{Cycles: m.Cycles() - start, Instructions: m.Instructions() - startIn}, nil
}

// ---------------------------------------------------------------------------

// GoPath adapts the Go! ORB to the KernelPath interface so Table 1
// can be produced uniformly. It builds a minimal two-component image
// (caller + callee with one null interface) on its own machine.
type GoPath struct {
	sys    *System
	caller *Instance
	iface  InterfaceID
}

// NewGoPath constructs the standard two-component Go! image.
func NewGoPath() (*GoPath, error) {
	sys := NewSystem(64)
	userText := machine.NewSeq().ALU("component-logic", 8).Build()
	if _, err := sys.LoadType("caller.t", userText); err != nil {
		return nil, err
	}
	if _, err := sys.LoadType("callee.t", userText); err != nil {
		return nil, err
	}
	caller, err := sys.NewInstance("caller", "caller.t", 4096)
	if err != nil {
		return nil, err
	}
	callee, err := sys.NewInstance("callee", "callee.t", 4096)
	if err != nil {
		return nil, err
	}
	id := sys.ORB().Register(callee, 4, nil)
	return &GoPath{sys: sys, caller: caller, iface: id}, nil
}

// Name implements KernelPath.
func (g *GoPath) Name() string { return "Go!" }

// Breakdown implements KernelPath.
func (g *GoPath) Breakdown() []PathPhase {
	return []PathPhase{
		{"marshal + gate call", "no trap: SISR needs no ring crossing"},
		{"ORB validate", "32-byte interface entry: id, nonce, type, limits"},
		{"thread migration", "stack retarget + 3 segment-register loads (3 cycles)"},
		{"return migration", "mirror path back to the caller"},
	}
}

// RPC implements KernelPath. The machine argument is ignored: the ORB
// path must run against the image's own GDT.
func (g *GoPath) RPC(_ *machine.Machine) (InvokeResult, error) {
	return g.sys.ORB().Invoke(g.caller, g.iface)
}

// System exposes the underlying image (footprint reporting).
func (g *GoPath) System() *System { return g.sys }

// ---------------------------------------------------------------------------

// Table1Row is one measured row of the reproduced Table 1.
type Table1Row struct {
	System      string
	PaperCycles uint64
	Cycles      uint64
}

// Table1 runs every kernel path once on a fresh machine each and
// returns the reproduced table in the paper's row order.
func Table1() ([]Table1Row, error) {
	goPath, err := NewGoPath()
	if err != nil {
		return nil, err
	}
	rows := []struct {
		path  KernelPath
		paper uint64
	}{
		{DefaultBSD(), 55000},
		{DefaultMach(), 3000},
		{DefaultL4(), 665},
		{goPath, 73},
	}
	var out []Table1Row
	for _, r := range rows {
		m := machine.New(machine.DefaultCostModel(), 16)
		res, err := r.path.RPC(m)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", r.path.Name(), err)
		}
		out = append(out, Table1Row{System: r.path.Name(), PaperCycles: r.paper, Cycles: res.Cycles})
	}
	return out, nil
}

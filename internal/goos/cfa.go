package goos

import (
	"strconv"
	"strings"

	"github.com/adm-project/adm/internal/lint"
	"github.com/adm-project/adm/internal/machine"
)

// AnalyzerSISR tags diagnostics from the SISR control-flow analysis.
const AnalyzerSISR = "sisr-cfa"

// AnalyzeListing is the SISR load-time verification as a control-flow
// analysis rather than an opcode grep. It builds a CFG over the
// component text and proves, statically, the properties the paper's
// scanner needs to make a component safe without a kernel mode:
//
//   - no privileged instruction anywhere in the text (the classic
//     SISR scan, reported with source positions);
//   - every direct branch/call target resolves inside the code
//     segment — a jump out of segment would escape the component's
//     protection domain, so it is rejected at load time exactly like
//     a privileged opcode;
//   - no indirect branches/calls (`jmp *reg`): their target cannot be
//     proven at load time, so SISR must reject them;
//   - unreachable instructions are flagged (warning): dead text
//     enlarges the scanned image for no benefit and often indicates a
//     mis-assembled target;
//   - control falling off the end of the segment is flagged
//     (warning): execution would continue into whatever the loader
//     placed next.
//
// Errors make the image unloadable; warnings do not.
func AnalyzeListing(l *Listing) []lint.Diagnostic {
	var diags []lint.Diagnostic
	n := len(l.Insts)
	if n == 0 {
		return diags
	}

	// succ[i] holds the CFG successor indices of instruction i; an
	// index == n is the virtual "off the end" node.
	succ := make([][]int, n)
	fallsOff := -1 // index of a reachable instruction that falls off the end

	for i, in := range l.Insts {
		d := &l.Insts[i]
		switch {
		case in.Instr.Op.Privileged():
			diags = append(diags, lint.Errorf(l.File, d.Line, d.Col, AnalyzerSISR,
				"privileged", "privileged instruction %s %q rejected by SISR scan",
				in.Instr.Op, strings.TrimSpace(in.Instr.Name)))
		}

		switch in.Instr.Op {
		case machine.OpRet, machine.OpIret:
			// No successors: control leaves the component.
		case machine.OpBranch, machine.OpCall:
			target, kind := resolveTarget(l, d)
			switch kind {
			case targetNone:
				diags = append(diags, lint.Warnf(l.File, d.Line, d.Col, AnalyzerSISR,
					"no-target", "%s without an explicit target; in-segment property cannot be verified", in.Mnemonic))
			case targetIndirect:
				diags = append(diags, lint.Errorf(l.File, d.Line, d.OperandCol, AnalyzerSISR,
					"indirect-branch", "indirect %s through %q cannot be statically verified by the SISR scan", in.Mnemonic, in.Operand))
			case targetUndefined:
				diags = append(diags, lint.Errorf(l.File, d.Line, d.OperandCol, AnalyzerSISR,
					"undefined-label", "%s target %q is not a defined label", in.Mnemonic, in.Operand))
			case targetResolved:
				if target < 0 || target >= n {
					diags = append(diags, lint.Errorf(l.File, d.Line, d.OperandCol, AnalyzerSISR,
						"out-of-segment", "%s target %q (+%d) is outside the code segment [0,%d)",
						in.Mnemonic, in.Operand, target, n))
				} else {
					succ[i] = append(succ[i], target)
				}
			}
			// Conditional branches and calls fall through; an
			// unconditional jmp does not.
			if in.Instr.Op == machine.OpCall || !machine.UnconditionalJump(in.Mnemonic) {
				succ[i] = append(succ[i], i+1)
			}
		default:
			succ[i] = append(succ[i], i+1)
		}
	}

	// Reachability from the component entry (offset 0).
	reach := make([]bool, n)
	work := []int{0}
	reach[0] = true
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range succ[i] {
			if s == n {
				if fallsOff < 0 || i > fallsOff {
					fallsOff = i
				}
				continue
			}
			if s >= 0 && s < n && !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}

	if fallsOff >= 0 {
		d := l.Insts[fallsOff]
		diags = append(diags, lint.Warnf(l.File, d.Line, d.Col, AnalyzerSISR,
			"fall-off-end", "control can fall off the end of the code segment after %q", d.Mnemonic))
	}

	// Report unreachable instructions as runs, one diagnostic each.
	for i := 0; i < n; {
		if reach[i] {
			i++
			continue
		}
		j := i
		for j < n && !reach[j] {
			j++
		}
		d := l.Insts[i]
		diags = append(diags, lint.Warnf(l.File, d.Line, d.Col, AnalyzerSISR,
			"unreachable", "%d instruction(s) unreachable from the component entry", j-i))
		i = j
	}
	return diags
}

// PrivilegeDiagnostics reports only the privileged-opcode findings of
// the classic SISR scan, positioned at their listing lines. goscan
// uses it to keep its historical loadable/rejected semantics while
// emitting the shared diagnostic format.
func PrivilegeDiagnostics(l *Listing) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, in := range l.Insts {
		if in.Instr.Op.Privileged() {
			diags = append(diags, lint.Errorf(l.File, in.Line, in.Col, AnalyzerSISR,
				"privileged", "privileged instruction %s %q rejected by SISR scan",
				in.Instr.Op, strings.TrimSpace(in.Instr.Name)))
		}
	}
	return diags
}

type targetKind int

const (
	targetNone targetKind = iota
	targetIndirect
	targetUndefined
	targetResolved
)

// resolveTarget classifies a branch/call operand: empty, indirect
// (`*reg`, `[reg]`, `%reg`), an absolute instruction index, or a
// label. For labels, a definition at the very end of the text (a
// trailing `end:`) resolves to len(Insts) and is reported as
// out-of-segment by the caller.
func resolveTarget(l *Listing, in *AsmInst) (int, targetKind) {
	op := in.Operand
	if op == "" {
		return 0, targetNone
	}
	if strings.HasPrefix(op, "*") || strings.HasPrefix(op, "[") || strings.HasPrefix(op, "%") {
		return 0, targetIndirect
	}
	if idx, err := strconv.Atoi(op); err == nil {
		return idx, targetResolved
	}
	if idx, ok := l.Labels[op]; ok {
		return idx, targetResolved
	}
	return 0, targetUndefined
}

// Package goos implements the Go! zero-kernel operating system from
// §5.1 of McCann (CIDR 2003): SISR (Software-based Instruction-Set
// Reduction) protection, typed code/data segments per component, and
// a privileged ORB component that performs protected intra-machine
// RPC by segment-register reloads and thread migration (Figure 6).
//
// The package also models the three comparison kernels of Table 1 —
// a BSD-style monolithic kernel, a Mach 2.5-style microkernel and an
// L4-style optimised microkernel — as explicit control-transfer paths
// on the same simulated machine, so the cycle comparison in the paper
// can be regenerated from path lengths rather than asserted.
package goos

import (
	"fmt"

	"github.com/adm-project/adm/internal/machine"
)

// Offense records one privileged instruction found by the scanner.
type Offense struct {
	// Index is the instruction's offset in the component text.
	Index int
	// Instr is the offending instruction.
	Instr machine.Instruction
}

func (o Offense) String() string {
	return fmt.Sprintf("+%d: privileged %s %q", o.Index, o.Instr.Op, o.Instr.Name)
}

// ScanReport is the result of scanning a component text section.
type ScanReport struct {
	// Instructions is the number of instructions scanned.
	Instructions int
	// Offenses lists every privileged instruction found.
	Offenses []Offense
}

// OK reports whether the text is loadable.
func (r ScanReport) OK() bool { return len(r.Offenses) == 0 }

// ScanError is returned when a component image fails the SISR scan.
type ScanError struct {
	Component string
	Report    ScanReport
}

func (e *ScanError) Error() string {
	return fmt.Sprintf("goos: SISR scan rejected component %q: %d privileged instruction(s), first %s",
		e.Component, len(e.Report.Offenses), e.Report.Offenses[0])
}

// Scanner is the SISR load-time code scanner. "On loading, code is
// scanned for illegal operations and if detected the code is rejected
// insuring adequate process protection." Scanning once at load is
// what removes the need for a user/kernel mode split at run time.
type Scanner struct {
	// AllowPrivileged marks scanner-exempt components (the ORB is the
	// only one in a standard system).
	AllowPrivileged bool
}

// Scan inspects every instruction in text and reports privileged ones.
func (s Scanner) Scan(text []machine.Instruction) ScanReport {
	r := ScanReport{Instructions: len(text)}
	if s.AllowPrivileged {
		return r
	}
	for i, in := range text {
		if in.Op.Privileged() {
			r.Offenses = append(r.Offenses, Offense{Index: i, Instr: in})
		}
	}
	return r
}

// ScanCost returns the one-time cycle cost of scanning text: a load
// plus a compare-and-branch per instruction. This is the price SISR
// pays at load time to avoid trap interposition at run time; the
// trap-vs-scan ablation bench charges it explicitly.
func (s Scanner) ScanCost(text []machine.Instruction) int {
	// load opcode (1) + classify ALU (1) + branch (1) per instruction.
	return 3 * len(text)
}

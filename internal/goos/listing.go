package goos

import (
	"strings"

	"github.com/adm-project/adm/internal/lint"
	"github.com/adm-project/adm/internal/machine"
)

// AnalyzerAsmParse tags diagnostics from the listing parser.
const AnalyzerAsmParse = "asm-parse"

// AsmInst is one parsed listing instruction with its source position,
// kept alongside the machine.Instruction so analyses can report
// findings at the original line rather than a text-section offset.
type AsmInst struct {
	// Index is the instruction's offset in the component text.
	Index int
	// Line/Col position the mnemonic in the source listing (1-based).
	Line, Col int
	// OperandCol positions the first operand, 0 if none.
	OperandCol int
	// Mnemonic is the lower-cased opcode mnemonic.
	Mnemonic string
	// Operand is the first operand ("" if none).
	Operand string
	// Instr is the classified machine instruction.
	Instr machine.Instruction
}

// Listing is a parsed assembly listing: the component text section in
// the format accepted by goscan and admlint. One instruction per
// line; `name:` defines a label (optionally followed by an
// instruction on the same line); comments run from '#' or ';' to end
// of line. Branch/call operands may be a label, an absolute
// instruction index, or an indirect form (`*reg`), which the SISR
// control-flow pass rejects.
type Listing struct {
	File  string
	Insts []AsmInst
	// Labels maps a label to the index of the instruction it precedes
	// (== len(Insts) for a trailing label).
	Labels map[string]int
	// LabelLines records where each label was defined.
	LabelLines map[string]int
}

// Text returns the listing's instructions as a component text section
// for the SISR scanner and loader.
func (l *Listing) Text() []machine.Instruction {
	out := make([]machine.Instruction, len(l.Insts))
	for i, in := range l.Insts {
		out[i] = in.Instr
	}
	return out
}

// InstAt returns the parsed instruction at text offset idx.
func (l *Listing) InstAt(idx int) (AsmInst, bool) {
	if idx < 0 || idx >= len(l.Insts) {
		return AsmInst{}, false
	}
	return l.Insts[idx], true
}

// ParseListing parses assembly-listing source. Parse problems (unknown
// mnemonics, duplicate labels) are returned as positioned diagnostics
// rather than a single error, so a listing with one bad line still
// yields every finding in one pass.
func ParseListing(file, src string) (*Listing, []lint.Diagnostic) {
	l := &Listing{File: file, Labels: map[string]int{}, LabelLines: map[string]int{}}
	var diags []lint.Diagnostic
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		rest := line
		// Labels: one or more `name:` prefixes.
		for {
			trimmed := strings.TrimSpace(rest)
			colon := strings.Index(trimmed, ":")
			if colon <= 0 || strings.ContainsAny(trimmed[:colon], " \t") {
				break
			}
			name := trimmed[:colon]
			if _, dup := l.Labels[name]; dup {
				diags = append(diags, lint.Errorf(file, lineNo+1, col(raw, name), AnalyzerAsmParse,
					"duplicate-label", "label %q already defined at line %d", name, l.LabelLines[name]))
			} else {
				l.Labels[name] = len(l.Insts)
				l.LabelLines[name] = lineNo + 1
			}
			rest = trimmed[colon+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		mnem := strings.ToLower(fields[0])
		op, ok := machine.ParseMnemonic(mnem)
		if !ok {
			diags = append(diags, lint.Errorf(file, lineNo+1, col(raw, fields[0]), AnalyzerAsmParse,
				"unknown-mnemonic", "unknown mnemonic %q", fields[0]))
			continue
		}
		in := AsmInst{
			Index:    len(l.Insts),
			Line:     lineNo + 1,
			Col:      col(raw, fields[0]),
			Mnemonic: mnem,
			Instr:    machine.Instruction{Op: op, Name: strings.TrimSpace(line)},
		}
		if len(fields) > 1 {
			in.Operand = strings.TrimSuffix(fields[1], ",")
			in.OperandCol = col(raw, fields[1])
		}
		l.Insts = append(l.Insts, in)
	}
	return l, diags
}

// col returns the 1-based column of the first occurrence of sub in
// raw, or 1 if not found.
func col(raw, sub string) int {
	if i := strings.Index(raw, sub); i >= 0 {
		return i + 1
	}
	return 1
}

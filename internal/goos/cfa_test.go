package goos

import (
	"testing"

	"github.com/adm-project/adm/internal/lint"
	"github.com/adm-project/adm/internal/machine"
)

func mustParseListing(t *testing.T, src string) *Listing {
	t.Helper()
	l, diags := ParseListing("test.s", src)
	if len(diags) != 0 {
		t.Fatalf("parse diagnostics: %v", diags)
	}
	return l
}

func diagCodes(diags []lint.Diagnostic) map[string]int {
	out := map[string]int{}
	for _, d := range diags {
		out[d.Code]++
	}
	return out
}

func TestParseListingLabelsAndComments(t *testing.T) {
	l := mustParseListing(t, `
# component entry
start:	load r1, n   ; init
	add r1, 1
	jmp start
done:
`)
	if len(l.Insts) != 3 {
		t.Fatalf("insts = %d, want 3", len(l.Insts))
	}
	if idx, ok := l.Labels["start"]; !ok || idx != 0 {
		t.Fatalf("start label = %d,%v", idx, ok)
	}
	// A trailing label points one past the last instruction.
	if idx := l.Labels["done"]; idx != 3 {
		t.Fatalf("done label = %d, want 3", idx)
	}
	if l.Insts[0].Line != 3 || l.Insts[0].Mnemonic != "load" || l.Insts[0].Operand != "r1" {
		t.Fatalf("inst 0 = %+v", l.Insts[0])
	}
	if l.Insts[2].Instr.Op != machine.OpBranch {
		t.Fatalf("jmp classified as %v", l.Insts[2].Instr.Op)
	}
}

func TestParseListingUnknownMnemonic(t *testing.T) {
	_, diags := ParseListing("t.s", "frobnicate r1\n")
	if len(diags) != 1 || diags[0].Code != "unknown-mnemonic" || diags[0].Line != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestParseListingDuplicateLabel(t *testing.T) {
	_, diags := ParseListing("t.s", "a: nop\na: nop\n")
	if len(diags) != 1 || diags[0].Code != "duplicate-label" || diags[0].Line != 2 {
		t.Fatalf("got %v", diags)
	}
}

func TestAnalyzeCleanLoop(t *testing.T) {
	l := mustParseListing(t, `
start:	load r1, n
	sub r1, 1
	jnz start
	ret
`)
	if diags := AnalyzeListing(l); len(diags) != 0 {
		t.Fatalf("clean loop flagged: %v", diags)
	}
}

func TestAnalyzePrivilegedPositioned(t *testing.T) {
	l := mustParseListing(t, "load r1, n\ncli\nret\n")
	diags := AnalyzeListing(l)
	if diagCodes(diags)["privileged"] != 1 {
		t.Fatalf("got %v", diags)
	}
	for _, d := range diags {
		if d.Code == "privileged" && d.Line != 2 {
			t.Fatalf("privileged at line %d, want 2", d.Line)
		}
	}
}

func TestAnalyzeOutOfSegment(t *testing.T) {
	l := mustParseListing(t, "load r1, n\njmp 12\nret\n")
	diags := AnalyzeListing(l)
	c := diagCodes(diags)
	if c["out-of-segment"] != 1 {
		t.Fatalf("got %v", diags)
	}
	// The ret after the unconditional jmp is unreachable.
	if c["unreachable"] != 1 {
		t.Fatalf("want unreachable warning, got %v", diags)
	}
	if !lint.HasErrors(diags) {
		t.Fatal("out-of-segment must be an error")
	}
}

func TestAnalyzeUndefinedLabel(t *testing.T) {
	l := mustParseListing(t, "jmp nowhere\n")
	diags := AnalyzeListing(l)
	if diagCodes(diags)["undefined-label"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestAnalyzeIndirectBranch(t *testing.T) {
	l := mustParseListing(t, "load r1, table\njmp *r1\n")
	diags := AnalyzeListing(l)
	if diagCodes(diags)["indirect-branch"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestAnalyzeFallOffEnd(t *testing.T) {
	l := mustParseListing(t, "load r1, n\nadd r1, 1\n")
	diags := AnalyzeListing(l)
	if diagCodes(diags)["fall-off-end"] != 1 {
		t.Fatalf("got %v", diags)
	}
	if lint.HasErrors(diags) {
		t.Fatalf("fall-off-end is a warning, got %v", diags)
	}
}

func TestAnalyzeConditionalFallthroughReachesBoth(t *testing.T) {
	// jz has both a target and a fallthrough, so nothing here is
	// unreachable.
	l := mustParseListing(t, `
	load r1, n
	jz done
	add r1, 1
done:	ret
`)
	if diags := AnalyzeListing(l); len(diags) != 0 {
		t.Fatalf("got %v", diags)
	}
}

func TestAnalyzeTrailingLabelTargetIsOutOfSegment(t *testing.T) {
	// A branch to a label defined after the last instruction resolves
	// to len(Insts): out of segment.
	l := mustParseListing(t, "jmp end\nend:\n")
	diags := AnalyzeListing(l)
	if diagCodes(diags)["out-of-segment"] != 1 {
		t.Fatalf("got %v", diags)
	}
}

func TestAnalyzeUnreachableRunReportedOnce(t *testing.T) {
	l := mustParseListing(t, `
	ret
	load r1, n
	add r1, 1
	ret
`)
	diags := AnalyzeListing(l)
	c := diagCodes(diags)
	if c["unreachable"] != 1 {
		t.Fatalf("want a single unreachable run, got %v", diags)
	}
}

func TestPrivilegeDiagnosticsOnly(t *testing.T) {
	// PrivilegeDiagnostics keeps goscan's classic semantics: it
	// reports the privileged opcode but not the CFG findings.
	l := mustParseListing(t, "cli\njmp nowhere\n")
	diags := PrivilegeDiagnostics(l)
	c := diagCodes(diags)
	if c["privileged"] != 1 || c["undefined-label"] != 0 {
		t.Fatalf("got %v", diags)
	}
}

func TestListingTextRoundTrip(t *testing.T) {
	l := mustParseListing(t, "load r1, n\nret\n")
	text := l.Text()
	if len(text) != 2 || text[0].Op != machine.OpLoad || text[1].Op != machine.OpRet {
		t.Fatalf("text = %+v", text)
	}
	if _, ok := l.InstAt(5); ok {
		t.Fatal("InstAt out of range must report !ok")
	}
}

package goos

import (
	"errors"
	"testing"

	"github.com/adm-project/adm/internal/machine"
)

func schedSystem(t *testing.T, nInstances int) (*System, []*Instance) {
	t.Helper()
	sys := NewSystem(64)
	text := machine.NewSeq().ALU("logic", 4).Build()
	if _, err := sys.LoadType("worker.t", text); err != nil {
		t.Fatal(err)
	}
	var insts []*Instance
	for i := 0; i < nInstances; i++ {
		inst, err := sys.NewInstance(string(rune('a'+i)), "worker.t", 1024)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}
	return sys, insts
}

func body(n int) []machine.Instruction {
	return machine.NewSeq().ALU("work", n).Build()
}

func TestSchedulerRoundRobinFairness(t *testing.T) {
	sys, insts := schedSystem(t, 3)
	s := NewScheduler(sys)
	for i, inst := range insts {
		s.Spawn(inst.Name, inst, body(2+i), 0)
	}
	counts, err := s.RunQuanta(300)
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range counts {
		if c != 100 {
			t.Fatalf("thread %d ran %d quanta, want 100: %v", id, c, counts)
		}
	}
	if s.Switches() != 300 {
		t.Fatalf("switches = %d", s.Switches())
	}
}

func TestSchedulerBlockUnblock(t *testing.T) {
	sys, insts := schedSystem(t, 2)
	s := NewScheduler(sys)
	t1 := s.Spawn("a", insts[0], body(1), 0)
	t2 := s.Spawn("b", insts[1], body(1), 0)
	if err := s.Block(t1.ID); err != nil {
		t.Fatal(err)
	}
	counts, _ := s.RunQuanta(10)
	if counts[t1.ID] != 0 || counts[t2.ID] != 10 {
		t.Fatalf("counts = %v", counts)
	}
	if s.Runnable() != 1 {
		t.Fatalf("runnable = %d", s.Runnable())
	}
	_ = s.Unblock(t1.ID)
	counts, _ = s.RunQuanta(10)
	if counts[t1.ID] != 5 || counts[t2.ID] != 5 {
		t.Fatalf("counts after unblock = %v", counts)
	}
	if err := s.Block(999); !errors.Is(err, ErrUnknownThread) {
		t.Fatalf("got %v", err)
	}
}

func TestSchedulerQuantaBudget(t *testing.T) {
	sys, insts := schedSystem(t, 1)
	s := NewScheduler(sys)
	s.Spawn("a", insts[0], body(1), 3)
	counts, err := s.RunQuanta(10)
	if err != nil {
		t.Fatal(err)
	}
	if counts[1] != 3 {
		t.Fatalf("finite thread ran %d quanta", counts[1])
	}
	if s.Runnable() != 0 {
		t.Fatal("exhausted thread still runnable")
	}
	if _, err := s.Tick(); !errors.Is(err, ErrNoRunnable) {
		t.Fatalf("got %v", err)
	}
}

func TestSchedulerEmpty(t *testing.T) {
	sys, _ := schedSystem(t, 0)
	s := NewScheduler(sys)
	if _, err := s.Tick(); !errors.Is(err, ErrNoRunnable) {
		t.Fatalf("got %v", err)
	}
}

func TestSchedulerDispatchCost(t *testing.T) {
	// A dispatch is run-queue bookkeeping (4 cycles) + the 3-cycle
	// segment-reload context switch + the thread body.
	sys, insts := schedSystem(t, 1)
	s := NewScheduler(sys)
	s.Spawn("a", insts[0], body(10), 0)
	sys.M.ResetCounters()
	if _, err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	// 2 loads + 2 ALU + 3 segloads + 10 body ALU = 17 cycles.
	if got := sys.M.Cycles(); got != 17 {
		t.Fatalf("dispatch cost = %d cycles, want 17", got)
	}
}

func TestInterruptDispatchViaORB(t *testing.T) {
	sys, insts := schedSystem(t, 2)
	driver := insts[0]
	device := insts[1]
	fired := 0
	iface := sys.ORB().Register(driver, 0, func() error { fired++; return nil })
	ic := NewInterruptController(sys)
	ic.RegisterHandler(9, iface)

	res, err := ic.Raise(9, device)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatal("driver handler did not run")
	}
	if res.Cycles != 73 {
		t.Fatalf("irq dispatch = %d cycles, want the standard 73-cycle ORB path", res.Cycles)
	}
	raised, handled := ic.Stats()
	if raised != 1 || handled != 1 {
		t.Fatalf("stats = %d %d", raised, handled)
	}
}

func TestInterruptNoHandler(t *testing.T) {
	sys, insts := schedSystem(t, 1)
	ic := NewInterruptController(sys)
	if _, err := ic.Raise(3, insts[0]); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("got %v", err)
	}
}

func TestInterruptDriverSwap(t *testing.T) {
	// Scenario 2's driver replacement at the interrupt layer: IRQ 9
	// re-routes from the Ethernet driver to the wireless driver.
	sys, insts := schedSystem(t, 3)
	eth, wifi, dev := insts[0], insts[1], insts[2]
	served := ""
	ethIface := sys.ORB().Register(eth, 0, func() error { served = "eth"; return nil })
	wifiIface := sys.ORB().Register(wifi, 0, func() error { served = "wifi"; return nil })
	ic := NewInterruptController(sys)
	ic.RegisterHandler(9, ethIface)
	if _, err := ic.Raise(9, dev); err != nil || served != "eth" {
		t.Fatalf("%v %q", err, served)
	}
	ic.RegisterHandler(9, wifiIface) // swap
	if _, err := ic.Raise(9, dev); err != nil || served != "wifi" {
		t.Fatalf("%v %q", err, served)
	}
	ic.UnregisterHandler(9)
	if _, err := ic.Raise(9, dev); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("got %v", err)
	}
}

func TestInterruptRevokedDriverSurfacesError(t *testing.T) {
	sys, insts := schedSystem(t, 2)
	driver, dev := insts[0], insts[1]
	iface := sys.ORB().Register(driver, 0, nil)
	ic := NewInterruptController(sys)
	ic.RegisterHandler(9, iface)
	_ = sys.Unload(driver.Name)
	if _, err := ic.Raise(9, dev); !errors.Is(err, ErrRevoked) {
		t.Fatalf("got %v", err)
	}
}

func TestMeasureGetPage(t *testing.T) {
	g, err := MeasureGetPage(100)
	if err != nil {
		t.Fatal(err)
	}
	if g.PagesScanned != 100 {
		t.Fatalf("pages = %d", g.PagesScanned)
	}
	// Per-getpage: Go! = 73 cycles; syscall path = trap(107) + 100
	// ALU + 64 copy + iret(81) = 352. Ratio ~4.8.
	if g.GoCycles != 7300 {
		t.Fatalf("go cycles = %d, want 7300", g.GoCycles)
	}
	if g.Ratio() < 3 || g.Ratio() > 10 {
		t.Fatalf("ratio = %.1f", g.Ratio())
	}
}

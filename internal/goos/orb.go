package goos

import (
	"errors"
	"fmt"

	"github.com/adm-project/adm/internal/machine"
)

// ORB is the privileged component at the heart of the zero-kernel:
// "to invoke services on other components a privileged component
// known as the ORB is used to load segment registers to 'switch a
// context' ... migrating the thread from caller to callee on the call
// and back again on return" (Figure 6). It is the only component
// whose text may contain segment-register loads.
type ORB struct {
	sys   *System
	table map[InterfaceID]*boundInterface
	next  InterfaceID
	nonce uint64
}

type boundInterface struct {
	entry    InterfaceEntry
	instance *Instance
	// handler is the simulated service body; for a null RPC it is nil
	// and the ORB charges the standard 2-ALU prologue/epilogue.
	handler func() error
}

var (
	// ErrUnknownInterface is returned for an unregistered interface id.
	ErrUnknownInterface = errors.New("goos: unknown interface")
	// ErrRevoked is returned when the callee's segment was revoked
	// between registration and call (mid-reconfiguration fence).
	ErrRevoked = errors.New("goos: callee revoked")
)

func newORB(sys *System) *ORB {
	return &ORB{sys: sys, table: make(map[InterfaceID]*boundInterface), next: 1, nonce: 0x9e3779b97f4a7c15}
}

// Register publishes a service on an instance and returns its
// interface id. Each registration costs exactly BytesPerInterface
// bytes of ORB state.
func (o *ORB) Register(inst *Instance, argWords int, handler func() error) InterfaceID {
	id := o.next
	o.next++
	o.nonce = o.nonce*6364136223846793005 + 1442695040888963407
	o.table[id] = &boundInterface{
		entry: InterfaceEntry{
			ID:        id,
			TypeSel:   inst.Type.CodeSel,
			StackSel:  inst.DataSel,
			ArgWords:  uint16(argWords),
			Nonce:     o.nonce,
			TypeCheck: inst.Type.typeTag,
		},
		instance: inst,
		handler:  handler,
	}
	return id
}

// Unregister removes an interface (component unbinding).
func (o *ORB) Unregister(id InterfaceID) { delete(o.table, id) }

// TableBytes is the live ORB dispatch-table size.
func (o *ORB) TableBytes() int { return len(o.table) * BytesPerInterface }

// InvokeResult reports one RPC's cost.
type InvokeResult struct {
	// Cycles is the machine cycles charged for the full call+return.
	Cycles uint64
	// Instructions retired on the path.
	Instructions uint64
}

// Invoke performs one protected intra-machine RPC through the ORB:
// caller marshals, the ORB validates against the 32-byte interface
// entry, migrates the thread by swapping stacks and reloading the
// code/data/stack segment registers (the 3-cycle context switch), the
// callee runs, and the ORB restores the caller the same way. The
// returned cycle count is what Table 1 reports for Go!.
func (o *ORB) Invoke(caller *Instance, id InterfaceID) (InvokeResult, error) {
	bi, ok := o.table[id]
	if !ok {
		return InvokeResult{}, fmt.Errorf("%w: %d", ErrUnknownInterface, id)
	}
	callee := bi.instance
	if d, ok := o.sys.M.Descriptor(callee.DataSel); !ok || !d.Present {
		return InvokeResult{}, fmt.Errorf("%w: %s", ErrRevoked, callee.Name)
	}

	m := o.sys.M
	start, startIn := m.Cycles(), m.Instructions()

	// ---- caller stub: marshal 4 argument words, call the ORB gate.
	seq := machine.NewSeq().
		Store("marshal-arg", 0, 4).
		Call("call-orb-gate")

	// ---- ORB gate, forward direction.
	seq.
		Store("save-caller-regs", 0, 5).            // spill caller register file
		Store("save-caller-flags", 0, 1).           // spill flags
		ALU("hash-iface-id", 2).                    // hash + mask into table
		Load("table-row", 0, 2).                    // row pointer, row
		Load("entry-fetch", 0, 1).                  // entry word
		ALU("present-check", 1).                    // entry present?
		Branch("present-branch", 1).                //
		Load("id-word", 0, 1).                      // id match
		ALU("id-cmp", 1).                           //
		Branch("id-branch", 1).                     //
		Load("nonce", 0, 2).                        // capability nonce check
		ALU("nonce-cmp", 2).                        //
		Branch("nonce-branch", 1).                  //
		Load("type-tag", 0, 1).                     // instance type check
		ALU("type-cmp", 1).                         //
		Branch("type-branch", 1).                   //
		ALU("limit-check", 1).                      // segment limit sanity
		Branch("limit-branch", 1).                  //
		ALU("argc-check", 1).                       // argument contract
		Branch("argc-branch", 1).                   //
		Load("copy-args", 0, 4).                    // copy 4 words caller→callee
		Store("copy-args", 0, 4).                   //
		Load("stack-swap", 0, 2).                   // thread migration: locate
		ALU("stack-swap", 2).                       //   callee stack, retarget
		Store("stack-swap", 0, 2).                  //   the migrating thread
		SegLoad("cs<-callee", callee.Type.CodeSel). // the 3-cycle
		SegLoad("ds<-callee", callee.DataSel).      //   SISR context
		SegLoad("ss<-callee", callee.DataSel).      //   switch
		Branch("dispatch", 1)

	// ---- callee: null service body (prologue, work, epilogue).
	seq.ALU("callee-body", 2).Ret("callee-ret")

	// ---- ORB gate, return direction: migrate the thread back.
	seq.
		SegLoad("cs<-caller", caller.Type.CodeSel).
		SegLoad("ds<-caller", caller.DataSel).
		SegLoad("ss<-caller", caller.DataSel).
		Load("restore-caller-regs", 0, 5).
		ALU("stack-swap-back", 2).
		Store("stack-swap-back", 0, 2).
		ALU("status", 1).
		Branch("return-path", 1).
		Ret("ret-to-caller")

	// ---- caller resume: read result word.
	seq.Load("result", 0, 1)

	if err := m.Run(seq.Build()); err != nil {
		return InvokeResult{}, fmt.Errorf("goos: RPC path faulted: %w", err)
	}
	if bi.handler != nil {
		if err := bi.handler(); err != nil {
			return InvokeResult{Cycles: m.Cycles() - start, Instructions: m.Instructions() - startIn}, err
		}
	}
	return InvokeResult{Cycles: m.Cycles() - start, Instructions: m.Instructions() - startIn}, nil
}

// InvokeTrapped is the ablation path: SISR scanning disabled, so user
// components run deprivileged and every segment switch must trap into
// a supervisor. Same logical work as Invoke plus two ring crossings —
// this is the cost SISR's scan-once design deletes.
func (o *ORB) InvokeTrapped(caller *Instance, id InterfaceID) (InvokeResult, error) {
	bi, ok := o.table[id]
	if !ok {
		return InvokeResult{}, fmt.Errorf("%w: %d", ErrUnknownInterface, id)
	}
	callee := bi.instance
	m := o.sys.M
	start, startIn := m.Cycles(), m.Instructions()

	// Ring crossing in, the same gate work at ring 0, ring crossing
	// out to the callee; and the mirror image on return.
	for i := 0; i < 2; i++ {
		dir := "fwd"
		if i == 1 {
			dir = "back"
		}
		seq := machine.NewSeq().
			Trap("trap-gate-"+dir, 0x30).
			Store("save", 0, 6).
			ALU("validate", 10).
			Load("table", 0, 6).
			Branch("checks", 5).
			SegLoad("cs", callee.Type.CodeSel).
			SegLoad("ds", callee.DataSel).
			SegLoad("ss", callee.DataSel).
			Iret("iret-" + dir)
		if err := m.Run(seq.Build()); err != nil {
			return InvokeResult{}, err
		}
	}
	m.SetMode(machine.Kernel) // leave the machine as Invoke found it
	return InvokeResult{Cycles: m.Cycles() - start, Instructions: m.Instructions() - startIn}, nil
}

package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/storage"
)

func newSessionFixture(t *testing.T) (*query.Engine, *storage.DB) {
	t.Helper()
	db, err := storage.Open(storage.NewMemDisk(), storage.NewMemDisk(),
		storage.DBOptions{Sync: storage.SyncManual})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := query.NewDurableCatalog(db)
	if err != nil {
		t.Fatal(err)
	}
	eng := query.NewEngine(cat, nil, nil)
	eng.MustExec("CREATE TABLE kv (k INT, v STRING)")
	for i := 0; i < 5; i++ {
		eng.MustExec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'seed-%d')", i, i))
	}
	return eng, db
}

func sessCount(t *testing.T, s *DBSession) int {
	t.Helper()
	res, err := s.Exec("SELECT k FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Rows)
}

// TestDBSessionSQLTxn drives BEGIN/COMMIT/ROLLBACK as SQL and checks
// isolation between two sessions.
func TestDBSessionSQLTxn(t *testing.T) {
	eng, db := newSessionFixture(t)
	a, b := NewDBSession(eng, db), NewDBSession(eng, db)

	if _, err := a.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if !a.InTxn() {
		t.Fatal("BEGIN left session in autocommit")
	}
	if _, err := a.Exec("INSERT INTO kv VALUES (100, 'mine')"); err != nil {
		t.Fatal(err)
	}
	if got := sessCount(t, a); got != 6 {
		t.Fatalf("writer sees %d rows, want 6", got)
	}
	if got := sessCount(t, b); got != 5 {
		t.Fatalf("other session sees uncommitted row: %d rows", got)
	}
	if _, err := a.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if a.InTxn() {
		t.Fatal("COMMIT left transaction open")
	}
	if got := sessCount(t, b); got != 6 {
		t.Fatalf("committed row invisible to other session: %d rows", got)
	}

	// ROLLBACK undoes.
	if _, err := b.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("DELETE FROM kv WHERE k = 0"); err != nil {
		t.Fatal(err)
	}
	if got := sessCount(t, b); got != 5 {
		t.Fatalf("own delete not applied: %d rows", got)
	}
	if _, err := b.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if got := sessCount(t, b); got != 6 {
		t.Fatalf("rollback did not restore: %d rows", got)
	}

	// COMMIT/ROLLBACK without a transaction.
	if _, err := a.Exec("COMMIT"); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("bare COMMIT err = %v, want ErrNoTxn", err)
	}
	if _, err := a.Exec("ROLLBACK"); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("bare ROLLBACK err = %v, want ErrNoTxn", err)
	}
}

// TestDBSessionConflictAutoRollback: a write conflict inside an
// explicit transaction dooms it — the session rolls it back and
// returns to autocommit.
func TestDBSessionConflictAutoRollback(t *testing.T) {
	eng, db := newSessionFixture(t)
	a, b := NewDBSession(eng, db), NewDBSession(eng, db)
	if _, err := a.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec("UPDATE kv SET v = 'a' WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	_, err := b.Exec("UPDATE kv SET v = 'b' WHERE k = 1")
	if !errors.Is(err, storage.ErrWriteConflict) {
		t.Fatalf("conflicting update err = %v, want ErrWriteConflict", err)
	}
	if b.InTxn() {
		t.Fatal("conflicted transaction not auto-rolled-back")
	}
	if _, err := a.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, err := b.Exec("SELECT v FROM kv WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "a" {
		t.Fatalf("winner's update lost: %v", res.Rows)
	}
}

// TestDBSessionAutocommitConcurrent: autocommit DML from many
// sessions rides implicit transactions through group commit; all rows
// land.
func TestDBSessionAutocommitConcurrent(t *testing.T) {
	eng, db := newSessionFixture(t)
	const sessions = 8
	const rowsPer = 10
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := NewDBSession(eng, db)
			for i := 0; i < rowsPer; i++ {
				k := 1000 + s*rowsPer + i
				if _, err := sess.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 's%d')", k, s)); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sess := NewDBSession(eng, db)
	if got := sessCount(t, sess); got != 5+sessions*rowsPer {
		t.Fatalf("rows = %d, want %d", got, 5+sessions*rowsPer)
	}
}

// TestDBSessionParallelExec: the morsel-driven executor inside an
// explicit transaction reads the session's snapshot.
func TestDBSessionParallelExec(t *testing.T) {
	eng, db := newSessionFixture(t)
	a, b := NewDBSession(eng, db), NewDBSession(eng, db)
	if _, err := a.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	// Snapshot taken by first read inside the txn... snapshots are
	// taken at BEGIN; b's later commit must stay invisible.
	if _, err := b.Exec("INSERT INTO kv VALUES (500, 'late')"); err != nil {
		t.Fatal(err)
	}
	res, rep, err := a.ExecParallel("SELECT k FROM kv", query.ExecOptions{Workers: 4, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Parallel {
		t.Fatal("parallel path not taken")
	}
	if len(res.Rows) != 5 {
		t.Fatalf("txn parallel scan sees %d rows, want 5 (snapshot at BEGIN)", len(res.Rows))
	}
	if _, err := a.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, _, err = a.ExecParallel("SELECT k FROM kv", query.ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("autocommit parallel scan sees %d rows, want 6", len(res.Rows))
	}
}

// TestDBSessionDDLPaths: DDL works in autocommit, fails inside an
// explicit transaction.
func TestDBSessionDDLPaths(t *testing.T) {
	eng, db := newSessionFixture(t)
	s := NewDBSession(eng, db)
	if _, err := s.Exec("CREATE INDEX ON kv (k)"); err != nil {
		t.Fatalf("autocommit DDL: %v", err)
	}
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CREATE TABLE nope (x INT)"); err == nil {
		t.Fatal("DDL inside txn succeeded, want error")
	}
	if _, err := s.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
}

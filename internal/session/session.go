// Package session implements the paper's Session Manager (Figure 1):
// "A session manager is fed information from monitors or gauges ...
// The current configuration operation is being monitored by the
// session monitor who constantly checks constraints and, if broken,
// consults the switching rules to decide how best to overcome the
// problem. When adaptivity is triggered the component architecture
// model allows an alternative execution plan to be designed. The
// session manager decides how to instantiate the alternative
// component architecture and passes his alternative over to the
// Adaptivity Manager."
//
// The Session Manager is itself componentised (§4, Scenario 3): an
// optimiser Planner can be plugged in for data-processing sessions,
// giving the manager mid-query re-planning capability.
package session

import (
	"errors"
	"fmt"
	"sync"

	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/trace"
)

// DecisionHandler turns a fired constraint decision into an actual
// reconfiguration (usually by consulting a ModeController or the
// Adaptivity Manager). Returning an error counts as a failed
// adaptation; the session manager records it and keeps running.
type DecisionHandler func(d constraint.Decision, rule *constraint.PrioritisedRule) error

// Planner is the componentised-optimiser plug-in: "The Session
// Manager is itself componentised in that it can have optimisor
// functionality added for data processing."
type Planner interface {
	// Replan produces a revised plan description given the violation
	// that triggered it; the session manager treats it opaquely.
	Replan(reason string) (string, error)
}

// Stats counts session-manager activity.
type Stats struct {
	Checks     int
	Violations int
	Actions    int
	Failures   int
	Skips      int // checks suppressed by cooldown
}

// Manager is a Session Manager instance.
type Manager struct {
	mu      sync.Mutex
	name    string
	reg     *monitor.Registry
	rules   *constraint.RuleSet
	self    string
	current *constraint.Target
	handler DecisionHandler
	planner Planner
	log     *trace.Log
	clock   func() float64
	stats   Stats
	// CooldownMS suppresses re-checks within the window after a fired
	// adaptation, so one violation does not thrash the configuration.
	CooldownMS float64
	lastAction float64
	attached   bool
}

// New builds a session manager. reg supplies the gauge environment;
// rules are the switching rules; handler executes decisions.
func New(name string, reg *monitor.Registry, rules *constraint.RuleSet,
	log *trace.Log, clock func() float64, handler DecisionHandler) *Manager {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	if log == nil {
		log = trace.New()
	}
	return &Manager{
		name: name, reg: reg, rules: rules, log: log, clock: clock,
		handler: handler, CooldownMS: 0, lastAction: -1e18,
	}
}

// SetSelf names the node unsourced metrics resolve against.
func (m *Manager) SetSelf(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.self = node
}

// SetCurrent records the currently selected target (SWITCH excludes
// its node).
func (m *Manager) SetCurrent(t *constraint.Target) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.current = t
}

// Current returns the currently selected target.
func (m *Manager) Current() *constraint.Target {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// SetPlanner installs the optimiser plug-in.
func (m *Manager) SetPlanner(p Planner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.planner = p
}

// Planner returns the installed optimiser plug-in, if any.
func (m *Manager) Planner() (Planner, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.planner, m.planner != nil
}

// Stats returns a snapshot of activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Attach subscribes the manager to its registry so every published
// sample triggers a constraint check — the Figure 1 feedback loop.
func (m *Manager) Attach() {
	m.mu.Lock()
	if m.attached {
		m.mu.Unlock()
		return
	}
	m.attached = true
	m.mu.Unlock()
	m.reg.OnSample(func(monitor.Sample) { _, _ = m.CheckNow() })
}

// CheckNow evaluates the switching rules against the current gauges.
// It returns whether an adaptation fired. Metric-unavailable errors
// are treated as "nothing to do" (monitors may not have reported yet).
func (m *Manager) CheckNow() (bool, error) {
	m.mu.Lock()
	now := m.clock()
	if now-m.lastAction < m.CooldownMS {
		m.stats.Skips++
		m.mu.Unlock()
		return false, nil
	}
	m.stats.Checks++
	ctx := &constraint.Context{Env: m.reg, Self: m.self, Current: m.current}
	rules := m.rules
	handler := m.handler
	name := m.name
	m.mu.Unlock()

	d, rule, err := rules.FirstDecision(ctx)
	if err != nil {
		var me *constraint.MetricError
		if errors.As(err, &me) {
			return false, nil
		}
		return false, err
	}
	if d.Kind == constraint.DecisionNone {
		return false, nil
	}
	// A decision that re-selects the current target is a no-op, not a
	// violation.
	m.mu.Lock()
	if m.current != nil && d.Kind == constraint.DecisionSelect && d.Target.Equal(*m.current) {
		m.mu.Unlock()
		return false, nil
	}
	m.stats.Violations++
	m.mu.Unlock()

	m.log.Emit(now, trace.KindViolation, name, "rule %d: %s", rule.ID, d)
	if handler == nil {
		return true, nil
	}
	if err := handler(d, rule); err != nil {
		m.mu.Lock()
		m.stats.Failures++
		m.mu.Unlock()
		m.log.Emit(m.clock(), trace.KindInfo, name, "adaptation failed: %v", err)
		return true, fmt.Errorf("session %s: handling %s: %w", name, d, err)
	}
	m.mu.Lock()
	m.stats.Actions++
	m.lastAction = m.clock()
	if d.Kind == constraint.DecisionSelect || d.Kind == constraint.DecisionSwitch {
		t := d.Target
		m.current = &t
	}
	m.mu.Unlock()
	return true, nil
}

// ---------------------------------------------------------------------------
// ModeController: architectural modes driven by the ADL model.

// ModeController owns an ADL model with `when` modes and applies
// mode switches to a live assembly through the Adaptivity Manager —
// the Figure 5 docked→wireless machinery.
type ModeController struct {
	mu      sync.Mutex
	model   *adl.Model
	am      *adapt.Manager
	factory adapt.Factory
	mode    string
	log     *trace.Log
	clock   func() float64
}

// NewModeController builds a controller currently in `mode`.
func NewModeController(model *adl.Model, am *adapt.Manager, factory adapt.Factory,
	mode string, log *trace.Log, clock func() float64) *ModeController {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	if log == nil {
		log = trace.New()
	}
	return &ModeController{model: model, am: am, factory: factory, mode: mode, log: log, clock: clock}
}

// Mode returns the current mode.
func (mc *ModeController) Mode() string {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.mode
}

// SwitchTo diffs the current mode against the target and applies the
// plan transactionally. On failure the mode is unchanged (the
// Adaptivity Manager rolled the assembly back).
func (mc *ModeController) SwitchTo(mode string) error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mode == mc.mode {
		return nil
	}
	plan, err := mc.model.Diff(mc.mode, mode)
	if err != nil {
		return fmt.Errorf("session: mode switch %s->%s: %w", mc.mode, mode, err)
	}
	if err := mc.am.Apply(plan, mc.factory); err != nil {
		return fmt.Errorf("session: mode switch %s->%s: %w", mc.mode, mode, err)
	}
	mc.log.Emit(mc.clock(), trace.KindInfo, "mode-controller", "now in mode %q", mode)
	mc.mode = mode
	return nil
}

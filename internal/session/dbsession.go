package session

import (
	"errors"
	"fmt"
	"sync"

	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/storage"
)

// DBSession is one client's transactional connection to a durable
// engine: it owns at most one open transaction and routes statements
// through it. BEGIN/COMMIT/ROLLBACK arrive as SQL; outside an
// explicit transaction each statement runs in its own implicit
// transaction (begun, executed, committed — commit rides the
// group-commit path, so concurrent autocommit sessions share fsyncs).
// DDL keeps the legacy non-versioned path and is rejected inside an
// explicit transaction.
//
// A session is safe for concurrent use, but it is one transaction
// stream: concurrent callers serialise on the session mutex.
type DBSession struct {
	eng *query.Engine
	tm  *storage.TxnManager

	mu     sync.Mutex
	txn    *storage.Txn
	closed bool
}

// ErrNoTxn reports COMMIT/ROLLBACK with no open transaction.
var ErrNoTxn = errors.New("session: no transaction is open")

// ErrSessionClosed reports statement execution on a closed session.
var ErrSessionClosed = errors.New("session: session is closed")

// NewDBSession binds a session to an engine and the DB whose
// transaction manager issues its snapshots. A nil db (volatile
// catalog) degrades to the legacy non-transactional path for every
// statement.
func NewDBSession(eng *query.Engine, db *storage.DB) *DBSession {
	s := &DBSession{eng: eng}
	if db != nil {
		s.tm = db.Txns()
	}
	return s
}

// Engine returns the underlying engine.
func (s *DBSession) Engine() *query.Engine { return s.eng }

// InTxn reports whether an explicit transaction is open.
func (s *DBSession) InTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txn != nil
}

// Begin opens an explicit transaction.
func (s *DBSession) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beginLocked()
}

func (s *DBSession) beginLocked() error {
	if s.closed {
		return ErrSessionClosed
	}
	if s.tm == nil {
		return fmt.Errorf("session: transactions need a durable DB")
	}
	if s.txn != nil {
		return fmt.Errorf("session: a transaction is already open")
	}
	s.txn = s.tm.Begin()
	return nil
}

// Commit commits the open transaction (through the group-commit
// leader when other sessions are committing concurrently).
func (s *DBSession) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.txn == nil {
		return ErrNoTxn
	}
	t := s.txn
	s.txn = nil
	return t.Commit()
}

// Rollback aborts the open transaction, undoing its writes.
func (s *DBSession) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.txn == nil {
		return ErrNoTxn
	}
	t := s.txn
	s.txn = nil
	return t.Rollback()
}

// Txn returns the open explicit transaction, or nil.
func (s *DBSession) Txn() *storage.Txn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txn
}

// Close rolls back any open transaction and marks the session
// unusable: every later Exec/Begin returns ErrSessionClosed. This is
// the server's teardown guarantee — a client that dies mid-transaction
// cannot strand its row claims. Idempotent; the rollback error (a
// poisoned WAL, at worst) is reported by the first call only.
func (s *DBSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if t := s.txn; t != nil {
		s.txn = nil
		return t.Rollback()
	}
	return nil
}

// Exec parses and executes one statement in this session's
// transactional context. A statement that hits a write conflict
// inside an explicit transaction aborts the whole transaction
// (first-committer-wins leaves it doomed anyway); the conflict error
// is returned and the session is back in autocommit.
func (s *DBSession) Exec(sql string) (*query.Result, error) {
	st, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execStmtLocked(st, query.ExecOptions{}, false)
}

// ExecOpts is Exec through the parallel executor with per-statement
// controls: transaction control is handled inline, SELECTs run across
// the morsel pipelines under the session transaction with opts'
// worker/batch tuning, Cancel hook and memory budget, and writes keep
// the serial transactional path (autocommit outside an explicit
// transaction). This is the server front-end's entry point — one
// parse, one lock acquisition per statement.
func (s *DBSession) ExecOpts(sql string, opts query.ExecOptions) (*query.Result, error) {
	st, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execStmtLocked(st, opts, true)
}

// execStmtLocked runs one parsed statement under the session lock.
// parallel selects the executor for SELECTs; writes always take the
// serial transactional path (DML is serial in both executors).
func (s *DBSession) execStmtLocked(st query.Stmt, opts query.ExecOptions, parallel bool) (*query.Result, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	switch st.(type) {
	case *query.BeginStmt:
		if err := s.beginLocked(); err != nil {
			return nil, err
		}
		return &query.Result{}, nil
	case *query.CommitStmt:
		if s.txn == nil {
			return nil, ErrNoTxn
		}
		t := s.txn
		s.txn = nil
		if err := t.Commit(); err != nil {
			return nil, err
		}
		return &query.Result{}, nil
	case *query.RollbackStmt:
		if s.txn == nil {
			return nil, ErrNoTxn
		}
		t := s.txn
		s.txn = nil
		if err := t.Rollback(); err != nil {
			return nil, err
		}
		return &query.Result{}, nil
	}

	if sel, ok := st.(*query.SelectStmt); ok && parallel {
		opts.Txn = s.txn
		if opts.Txn == nil && s.tm != nil {
			// Autocommit read: give the parallel SELECT its own
			// snapshot so it cannot see other sessions' uncommitted
			// writes. Read-only, so rollback (no WAL traffic).
			t := s.tm.Begin()
			defer func() { _ = t.Rollback() }()
			opts.Txn = t
		}
		res, _, err := s.eng.ExecuteStmt(sel, opts)
		return res, err
	}
	if s.txn != nil {
		res, err := s.eng.ExecStmtTxn(st, s.txn)
		if errors.Is(err, storage.ErrWriteConflict) {
			t := s.txn
			s.txn = nil
			if rbErr := t.Rollback(); rbErr != nil {
				return nil, errors.Join(err, rbErr)
			}
		}
		return res, err
	}
	return s.autocommit(st)
}

// autocommit runs one statement outside an explicit transaction: DDL
// (and any statement on a non-durable engine) takes the legacy
// unversioned path; reads and DML get an implicit transaction so a
// multi-row statement is atomic and its commit can share an fsync
// with concurrent sessions.
func (s *DBSession) autocommit(st query.Stmt) (*query.Result, error) {
	if s.tm == nil {
		return s.eng.ExecStmtTxn(st, nil)
	}
	switch st.(type) {
	case *query.CreateTableStmt, *query.CreateIndexStmt, *query.AnalyzeStmt:
		return s.eng.ExecStmtTxn(st, nil)
	}
	t := s.tm.Begin()
	res, err := s.eng.ExecStmtTxn(st, t)
	if err != nil {
		return nil, errors.Join(err, t.Rollback())
	}
	if err := t.Commit(); err != nil {
		return nil, err
	}
	return res, nil
}

// ExecParallel is Exec through the morsel-driven parallel executor:
// opts.Txn is overridden with the session's open transaction (nil in
// autocommit — parallel SELECTs outside a transaction read the raw
// heap exactly as before).
func (s *DBSession) ExecParallel(sql string, opts query.ExecOptions) (*query.Result, *query.ExecReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrSessionClosed
	}
	opts.Txn = s.txn
	res, rep, err := s.eng.ExecuteSQL(sql, opts)
	if s.txn != nil && errors.Is(err, storage.ErrWriteConflict) {
		t := s.txn
		s.txn = nil
		if rbErr := t.Rollback(); rbErr != nil {
			return res, rep, errors.Join(err, rbErr)
		}
	}
	return res, rep, err
}

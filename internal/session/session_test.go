package session

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/simnet"
	"github.com/adm-project/adm/internal/trace"
)

func sample(metric, source string, v, t float64) monitor.Sample {
	return monitor.Sample{Key: monitor.Key{Metric: metric, Source: source}, Value: v, TimeMS: t}
}

func TestCheckNowFiresOnViolation(t *testing.T) {
	reg := monitor.NewRegistry()
	rules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 455, Priority: 0,
		Rule: constraint.MustParse("If processor-util > 90% then SWITCH(node1.p, node2.p)"),
	})
	var fired []constraint.Decision
	m := New("sm", reg, rules, nil, nil, func(d constraint.Decision, r *constraint.PrioritisedRule) error {
		fired = append(fired, d)
		return nil
	})
	cur := constraint.Target{Segments: []string{"node1", "p"}}
	m.SetCurrent(&cur)

	reg.Publish(sample(monitor.MetricProcessorUtil, "", 50, 0))
	reg.Publish(sample(monitor.MetricCapacity, "node1", 10, 0))
	reg.Publish(sample(monitor.MetricLoad, "node1", 9, 0))
	reg.Publish(sample(monitor.MetricCapacity, "node2", 10, 0))
	reg.Publish(sample(monitor.MetricLoad, "node2", 1, 0))

	ok, err := m.CheckNow()
	if err != nil || ok {
		t.Fatalf("below threshold: ok=%v err=%v", ok, err)
	}
	reg.Publish(sample(monitor.MetricProcessorUtil, "", 95, 1))
	ok, err = m.CheckNow()
	if err != nil || !ok {
		t.Fatalf("above threshold: ok=%v err=%v", ok, err)
	}
	if len(fired) != 1 || fired[0].Kind != constraint.DecisionSwitch || fired[0].Target.Node() != "node2" {
		t.Fatalf("fired = %v", fired)
	}
	// Current target updated after a successful action.
	if m.Current().Node() != "node2" {
		t.Fatalf("current = %v", m.Current())
	}
	st := m.Stats()
	if st.Violations != 1 || st.Actions != 1 || st.Checks != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCheckNowIgnoresMissingMetrics(t *testing.T) {
	reg := monitor.NewRegistry()
	rules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 1, Rule: constraint.MustParse("If bandwidth < 10 then BEST(a)"),
	})
	m := New("sm", reg, rules, nil, nil, nil)
	ok, err := m.CheckNow()
	if err != nil || ok {
		t.Fatalf("missing metrics must be quiet: %v %v", ok, err)
	}
}

func TestCheckNowNoopWhenSelectingCurrent(t *testing.T) {
	reg := monitor.NewRegistry()
	reg.Publish(sample(monitor.MetricCapacity, "a", 10, 0))
	reg.Publish(sample(monitor.MetricLoad, "a", 0, 0))
	rules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 1, Rule: constraint.MustParse("Select BEST(a)"),
	})
	calls := 0
	m := New("sm", reg, rules, nil, nil, func(constraint.Decision, *constraint.PrioritisedRule) error {
		calls++
		return nil
	})
	ok, _ := m.CheckNow()
	if !ok || calls != 1 {
		t.Fatalf("first selection should fire: ok=%v calls=%d", ok, calls)
	}
	ok, _ = m.CheckNow()
	if ok || calls != 1 {
		t.Fatalf("re-selecting current target must be a no-op: ok=%v calls=%d", ok, calls)
	}
}

func TestHandlerFailureCounted(t *testing.T) {
	reg := monitor.NewRegistry()
	reg.Publish(sample(monitor.MetricCapacity, "a", 10, 0))
	reg.Publish(sample(monitor.MetricLoad, "a", 0, 0))
	rules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 1, Rule: constraint.MustParse("Select BEST(a)"),
	})
	boom := errors.New("boom")
	m := New("sm", reg, rules, nil, nil, func(constraint.Decision, *constraint.PrioritisedRule) error {
		return boom
	})
	ok, err := m.CheckNow()
	if !ok || !errors.Is(err, boom) {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m.Stats().Failures != 1 || m.Stats().Actions != 0 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	// Current must NOT update on failure.
	if m.Current() != nil {
		t.Fatal("current updated despite failure")
	}
}

func TestCooldownSuppressesThrash(t *testing.T) {
	clock := simnet.NewClock()
	reg := monitor.NewRegistry()
	reg.Publish(sample(monitor.MetricCapacity, "a", 10, 0))
	reg.Publish(sample(monitor.MetricLoad, "a", 0, 0))
	reg.Publish(sample(monitor.MetricCapacity, "b", 5, 0))
	reg.Publish(sample(monitor.MetricLoad, "b", 0, 0))
	rules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 1, Rule: constraint.MustParse("If processor-util > 90 then SWITCH(a.x, b.x)"),
	})
	reg.Publish(sample(monitor.MetricProcessorUtil, "", 99, 0))
	actions := 0
	m := New("sm", reg, rules, nil, clock.Now, func(d constraint.Decision, _ *constraint.PrioritisedRule) error {
		actions++
		return nil
	})
	m.CooldownMS = 100
	cur := constraint.Target{Segments: []string{"a", "x"}}
	m.SetCurrent(&cur)
	if ok, _ := m.CheckNow(); !ok {
		t.Fatal("first check must fire")
	}
	// Within cooldown: suppressed even though still violated. (SWITCH
	// alternates a<->b, so without cooldown it would thrash.)
	if ok, _ := m.CheckNow(); ok {
		t.Fatal("cooldown violated")
	}
	if m.Stats().Skips != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	clock.Schedule(200, func() {})
	clock.Run()
	if ok, _ := m.CheckNow(); !ok {
		t.Fatal("post-cooldown check must fire")
	}
	if actions != 2 {
		t.Fatalf("actions = %d", actions)
	}
}

func TestAttachRunsChecksOnSamples(t *testing.T) {
	reg := monitor.NewRegistry()
	rules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 1, Rule: constraint.MustParse("If processor-util > 90 then BEST(a)"),
	})
	fired := 0
	m := New("sm", reg, rules, nil, nil, func(constraint.Decision, *constraint.PrioritisedRule) error {
		fired++
		return nil
	})
	m.Attach()
	m.Attach() // idempotent
	reg.Publish(sample(monitor.MetricCapacity, "a", 10, 0))
	reg.Publish(sample(monitor.MetricLoad, "a", 0, 0))
	reg.Publish(sample(monitor.MetricProcessorUtil, "", 95, 1))
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	if m.Stats().Checks < 3 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

type fakePlanner struct{ plans []string }

func (p *fakePlanner) Replan(reason string) (string, error) {
	p.plans = append(p.plans, reason)
	return "revised:" + reason, nil
}

func TestPlannerPlugin(t *testing.T) {
	m := New("sm", monitor.NewRegistry(), constraint.NewRuleSet(), nil, nil, nil)
	if _, ok := m.Planner(); ok {
		t.Fatal("planner before install")
	}
	fp := &fakePlanner{}
	m.SetPlanner(fp)
	p, ok := m.Planner()
	if !ok {
		t.Fatal("planner missing")
	}
	out, err := p.Replan("cardinality-misestimate")
	if err != nil || out != "revised:cardinality-misestimate" {
		t.Fatalf("replan = %q %v", out, err)
	}
}

// ---------------------------------------------------------------------------
// The full Figure 1 loop: monitors → gauges → session manager →
// adaptivity manager → reconfigured assembly (Scenario 2 end to end).

func TestFigure1LoopDockedToWireless(t *testing.T) {
	clock := simnet.NewClock()
	log := trace.New()
	reg := monitor.NewRegistry()
	model := adl.MustParse(adl.Figure4)
	asm := component.NewAssembly(log, clock.Now)
	factory := adapt.TypeFactory(model, nil)
	if err := adapt.Instantiate(asm, model, "docked", factory); err != nil {
		t.Fatal(err)
	}
	am := adapt.NewManager(asm, log, clock.Now)
	mc := NewModeController(model, am, factory, "docked", log, clock.Now)

	// Switching rule: when bandwidth collapses, adopt the wireless
	// configuration. The rule's target names the mode to enter.
	rules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 1, Priority: 0,
		Rule: constraint.MustParse("If bandwidth < 1000 then wireless.mode"),
	})
	sm := New("laptop-session", reg, rules, log, clock.Now, nil)
	handler := func(d constraint.Decision, _ *constraint.PrioritisedRule) error {
		return mc.SwitchTo(d.Target.Node())
	}
	sm2 := New("laptop-session", reg, rules, log, clock.Now, handler)
	_ = sm // the bare manager above just checks construction defaults
	sm2.Attach()

	// Docked: full bandwidth, nothing fires.
	reg.Publish(sample(monitor.MetricBandwidth, "", 10000, 0))
	if mc.Mode() != "docked" {
		t.Fatal("premature switch")
	}
	// Undock: bandwidth collapses; the loop must reconfigure.
	clock.Schedule(50, func() {
		reg.Publish(sample(monitor.MetricBandwidth, "", 500, 50))
	})
	clock.Run()
	if mc.Mode() != "wireless" {
		t.Fatalf("mode = %q, want wireless", mc.Mode())
	}
	if _, ok := asm.Component("wopt"); !ok {
		t.Fatal("wireless optimiser not live")
	}
	if errs := asm.Validate(); len(errs) != 0 {
		t.Fatalf("post-loop invalid: %v", errs)
	}
	// Detection-to-switch latency is observable in the trace.
	if lat, ok := log.Latency(trace.KindViolation, trace.KindSwitch); !ok || lat < 0 {
		t.Fatalf("latency = %v %v", lat, ok)
	}
}

func TestModeControllerRollbackKeepsMode(t *testing.T) {
	log := trace.New()
	model := adl.MustParse(adl.Figure4)
	asm := component.NewAssembly(log, nil)
	good := adapt.TypeFactory(model, nil)
	if err := adapt.Instantiate(asm, model, "docked", good); err != nil {
		t.Fatal(err)
	}
	am := adapt.NewManager(asm, log, nil)
	bad := func(inst adl.InstDecl) (*component.Component, error) {
		return nil, errors.New("component store unreachable")
	}
	mc := NewModeController(model, am, bad, "docked", log, nil)
	if err := mc.SwitchTo("wireless"); err == nil {
		t.Fatal("want switch failure")
	}
	if mc.Mode() != "docked" {
		t.Fatalf("mode = %q after failed switch", mc.Mode())
	}
	if errs := asm.Validate(); len(errs) != 0 {
		t.Fatalf("assembly invalid after rollback: %v", errs)
	}
	// Same-mode switch is a no-op.
	if err := mc.SwitchTo("docked"); err != nil {
		t.Fatal(err)
	}
	if err := mc.SwitchTo("flying"); err == nil {
		t.Fatal("unknown mode must error")
	}
}

// TestCheckNowConcurrentStats hammers CheckNow from several goroutines
// while a publisher flips the violated gauge, so decisions are racy
// rather than scripted. The race detector is the main assertion; on
// top of it the activity counters must stay coherent: every call is
// either a check or a cooldown skip, and every violation resolved as
// exactly one action or failure.
func TestCheckNowConcurrentStats(t *testing.T) {
	reg := monitor.NewRegistry()
	rules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 1, Priority: 0,
		Rule: constraint.MustParse("If processor-util > 90% then SWITCH(node1.p, node2.p)"),
	})
	var tick atomic.Int64
	clock := func() float64 { return float64(tick.Add(1)) }
	var handled atomic.Int64
	handler := func(d constraint.Decision, _ *constraint.PrioritisedRule) error {
		if handled.Add(1)%3 == 0 {
			return errors.New("injected adaptation failure")
		}
		return nil
	}
	m := New("concurrent", reg, rules, nil, clock, handler)
	m.CooldownMS = 5
	cur := constraint.Target{Segments: []string{"node1", "p"}}
	m.SetCurrent(&cur)
	reg.Publish(sample(monitor.MetricCapacity, "node1", 10, 0))
	reg.Publish(sample(monitor.MetricLoad, "node1", 9, 0))
	reg.Publish(sample(monitor.MetricCapacity, "node2", 10, 0))
	reg.Publish(sample(monitor.MetricLoad, "node2", 1, 0))
	// Publish the overload before spawning anything so the first check
	// sees a violation even if the flipping publisher is scheduled
	// late (on one core the last-spawned goroutines run first).
	reg.Publish(sample(monitor.MetricProcessorUtil, "", 95, 0))

	stop := make(chan struct{})
	var publisher sync.WaitGroup
	publisher.Add(1)
	go func() {
		defer publisher.Done()
		v := 50.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.Publish(sample(monitor.MetricProcessorUtil, "", v, 0))
			if v > 90 {
				v = 50
			} else {
				v = 95
			}
			runtime.Gosched()
		}
	}()

	const goroutines = 8
	const callsEach = 200
	var handlerErrs atomic.Int64
	var checkers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		checkers.Add(1)
		go func() {
			defer checkers.Done()
			for i := 0; i < callsEach; i++ {
				if _, err := m.CheckNow(); err != nil {
					handlerErrs.Add(1)
				}
				if i%16 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	checkers.Wait()
	close(stop)
	publisher.Wait()

	st := m.Stats()
	if got := st.Checks + st.Skips; got != goroutines*callsEach {
		t.Fatalf("checks+skips = %d, want %d (stats %+v)", got, goroutines*callsEach, st)
	}
	if st.Violations != st.Actions+st.Failures {
		t.Fatalf("violations %d != actions %d + failures %d", st.Violations, st.Actions, st.Failures)
	}
	if int64(st.Failures) != handlerErrs.Load() {
		t.Fatalf("failures %d, but %d CheckNow calls returned errors", st.Failures, handlerErrs.Load())
	}
	// The publisher kept the gauge above threshold half the time, so
	// with 1600 calls at least one violation must have fired.
	if st.Violations == 0 {
		t.Fatal("no violations fired under sustained overload")
	}
	// The current target always names a real node whichever switch won.
	if n := m.Current().Node(); n != "node1" && n != "node2" {
		t.Fatalf("current = %q", n)
	}
}

// TestModeControllerSwitchToConcurrent drives SwitchTo from many
// goroutines ping-ponging docked<->wireless. Switches serialise on the
// controller latch, so whichever call lands last must leave the mode,
// the live component set, and the assembly invariants agreeing.
func TestModeControllerSwitchToConcurrent(t *testing.T) {
	log := trace.New()
	model := adl.MustParse(adl.Figure4)
	asm := component.NewAssembly(log, nil)
	factory := adapt.TypeFactory(model, nil)
	if err := adapt.Instantiate(asm, model, "docked", factory); err != nil {
		t.Fatal(err)
	}
	am := adapt.NewManager(asm, log, nil)
	mc := NewModeController(model, am, factory, "docked", log, nil)

	modes := [2]string{"docked", "wireless"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := mc.SwitchTo(modes[(g+i)%2]); err != nil {
					t.Errorf("SwitchTo: %v", err)
				}
				// Reads interleave with switches on other goroutines.
				if mode := mc.Mode(); mode != "docked" && mode != "wireless" {
					t.Errorf("mode = %q mid-run", mode)
				}
			}
		}(g)
	}
	wg.Wait()

	final := mc.Mode()
	if final != "docked" && final != "wireless" {
		t.Fatalf("final mode = %q", final)
	}
	if errs := asm.Validate(); len(errs) != 0 {
		t.Fatalf("assembly invalid after concurrent switching: %v", errs)
	}
	// The wireless optimiser is live exactly when the controller says
	// the wireless mode won the last switch.
	_, hasWopt := asm.Component("wopt")
	if hasWopt != (final == "wireless") {
		t.Fatalf("mode %q but wopt live = %v", final, hasWopt)
	}
}

package analysis

import (
	"go/ast"
)

// Morselguard enforces panic containment at morsel boundaries: in
// packages that define containPanic, every goroutine is launched as a
// function literal whose body defers containPanic before doing any
// work, and any WaitGroup.Done defer is registered before it. The
// ordering matters because defers run LIFO: Done deferred after
// containPanic would run first on a panic, releasing the barrier
// before the failure is latched into the fail flag — the exact race
// the parallel operators' serial-replay tests exist to catch.
var Morselguard = &Analyzer{
	Name: "morselguard",
	Doc:  "parallel-executor goroutines defer containPanic before any work, with Done deferred first",
	Run:  runMorselguard,
}

func runMorselguard(pass *Pass) {
	if pass.Pkg == nil || pass.Pkg.Scope().Lookup("containPanic") == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				pass.Reportf(g.Pos(), "unguarded-worker",
					"goroutine is not a contained worker literal — wrap the body in func(){ defer containPanic(...) ... }")
				return true
			}
			checkWorker(pass, g, lit)
			return true
		})
	}
}

func checkWorker(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit) {
	guarded := false
	for _, s := range lit.Body.List {
		d, ok := s.(*ast.DeferStmt)
		if !ok {
			// First non-defer statement: the guard must already be
			// registered, or work can panic uncontained.
			break
		}
		if calleeName(d.Call) == "containPanic" {
			if guarded {
				continue
			}
			guarded = true
			continue
		}
		if guarded && methodCall(d.Call, "Done") != nil && namedTypeName(pass, methodCall(d.Call, "Done")) == "WaitGroup" {
			pass.Reportf(d.Pos(), "barrier-order",
				"WaitGroup.Done is deferred after containPanic — defers run LIFO, so Done would release the barrier before the panic is latched; defer Done first")
		}
	}
	if !guarded {
		pass.Reportf(g.Pos(), "unguarded-worker",
			"worker body does not defer containPanic before its first statement — a panic here escapes the morsel boundary")
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flow.go is the structured-control-flow walker shared by the
// pairing analyzers (pinpair, batchrelease, latchorder). It abstract-
// interprets function bodies over Go's structured statements — no CFG
// construction — tracking a may-held set of resources (pins, pooled
// batches, latches):
//
//   - branch joins union the arms, so a resource live on ANY path into
//     a return is reported (exactly the leak definition);
//   - error-result variables refine branches: `if err != nil` can only
//     be entered when the acquire failed, so the resource is dropped
//     from the then-arm (and dually for == nil and errors.Is);
//   - defer is recognised as whole-function coverage;
//   - continue inside the acquiring loop is a leak site of its own;
//   - function literals are analyzed as independent units (the walker
//     does not descend), matching how worker bodies own their
//     resources;
//   - goto bails out of leak reporting for the function — conservative
//     silence beats a false positive (no engine code uses goto).

// resource is one live obligation: something acquired that must be
// released before the function escapes.
type resource struct {
	key       string       // release-matching key
	pos       token.Pos    // acquire site (diagnostics anchor here)
	what      string       // human description ("pin of page id", ...)
	errVar    types.Object // error result of the acquire; non-nil err ⇒ not acquired
	val       types.Object // value result (ownership-transfer analyses)
	level     int          // latch level (latchorder)
	deferred  bool         // a deferred release covers it
	loopDepth int          // loop nesting at the acquire site
	reported  bool         // dedupe across merged paths
}

// flowState is the may-held resource set along one path.
type flowState struct {
	live []*resource
}

func (s *flowState) clone() *flowState {
	return &flowState{live: append([]*resource(nil), s.live...)}
}

func (s *flowState) add(r *resource) { s.live = append(s.live, r) }

func (s *flowState) remove(target *resource) {
	out := s.live[:0]
	for _, r := range s.live {
		if r != target {
			out = append(out, r)
		}
	}
	s.live = out
}

func (s *flowState) removeKey(key string, markDeferred bool) {
	out := s.live[:0]
	for _, r := range s.live {
		if r.key == key {
			if markDeferred {
				r.deferred = true
				out = append(out, r)
			}
			continue
		}
		out = append(out, r)
	}
	s.live = out
}

// union merges path states: a resource is live after a join if it is
// live on any incoming path.
func union(states ...*flowState) *flowState {
	merged := &flowState{}
	seen := map[*resource]bool{}
	for _, st := range states {
		if st == nil {
			continue
		}
		for _, r := range st.live {
			if !seen[r] {
				seen[r] = true
				merged.add(r)
			}
		}
	}
	return merged
}

// flowConfig parameterises the walker per analyzer.
type flowConfig struct {
	pass *Pass
	// acquire inspects a call (lhs = assignment targets, may be nil)
	// and returns a new obligation, or nil. live is the current
	// may-held set (latchorder checks ordering here).
	acquire func(call *ast.CallExpr, lhs []ast.Expr, live []*resource) *resource
	// releaseKey returns the key a call releases, or "".
	releaseKey func(call *ast.CallExpr) string
	// onCall, if set, is invoked for every call expression reached
	// with a non-empty live set (minus deferred-released resources
	// when deferKeepsHeld is false).
	onCall func(call *ast.CallExpr, live []*resource)
	// onChan, if set, is invoked for channel operations and selects
	// reached with a non-empty live set.
	onChan func(pos token.Pos, op string, live []*resource)
	// transferValues enables ownership transfer: returning, storing,
	// or sending the resource's value ends the obligation.
	transferValues bool
	// deferKeepsHeld: a deferred release keeps the resource in the
	// live set (latches stay held until return; they are only exempt
	// from leak reports). When false a deferred release discharges
	// the obligation entirely.
	deferKeepsHeld bool
	// reportLeaks enables live-at-escape reporting.
	reportLeaks bool
	leakCode    string
}

// runFlow applies the config to every function body in the package.
func runFlow(cfg *flowConfig) {
	for _, f := range cfg.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				w := &flowWalker{cfg: cfg}
				st := &flowState{}
				if !w.block(body.List, st) {
					w.escape(body.Rbrace, st, "function end")
				}
				w.flush()
			}
			return true
		})
	}
}

type flowWalker struct {
	cfg       *flowConfig
	loopDepth int
	breaks    []*flowState // break-state accumulator per enclosing loop
	reports   []func()
	bailed    bool // goto seen: suppress leak reports
}

func (w *flowWalker) flush() {
	if w.bailed {
		return
	}
	for _, r := range w.reports {
		r()
	}
}

// escape records leak reports for resources live at a path exit.
func (w *flowWalker) escape(at token.Pos, st *flowState, how string) {
	if !w.cfg.reportLeaks {
		return
	}
	line := w.cfg.pass.Position(at).Line
	for _, r := range st.live {
		if r.deferred || r.reported {
			continue
		}
		r.reported = true
		r := r
		w.reports = append(w.reports, func() {
			w.cfg.pass.Reportf(r.pos, w.cfg.leakCode,
				"%s is not released on the path escaping via %s at line %d", r.what, how, line)
		})
	}
}

// block walks a statement list; true means every path terminated
// (returned, panicked, or branched away).
func (w *flowWalker) block(list []ast.Stmt, st *flowState) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

func (w *flowWalker) stmt(s ast.Stmt, st *flowState) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.scanOps(s, st)
		if w.cfg.transferValues && !allBlank(s.Lhs) {
			w.transferScan(s.Rhs, st)
		}
		w.invalidateErrVars(s, st)
		if len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				w.handleCall(call, s.Lhs, st)
			}
		}

	case *ast.DeclStmt:
		w.scanOps(s, st)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 {
					continue
				}
				if call, ok := vs.Values[0].(*ast.CallExpr); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.handleCall(call, lhs, st)
				}
			}
		}

	case *ast.ExprStmt:
		w.scanOps(s, st)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isPanic(w.cfg.pass, call) {
				return true
			}
			w.handleCall(call, nil, st)
		}

	case *ast.DeferStmt:
		w.deferredRelease(s.Call, st)

	case *ast.ReturnStmt:
		w.scanOps(s, st)
		if w.cfg.transferValues {
			w.transferScan(s.Results, st)
		}
		w.escape(s.Pos(), st, "return")
		return true

	case *ast.BranchStmt:
		switch s.Tok {
		case token.CONTINUE:
			w.continueLeaks(s, st)
			return true
		case token.BREAK:
			if n := len(w.breaks); n > 0 {
				w.breaks[n-1] = union(w.breaks[n-1], st)
			}
			return true
		case token.GOTO:
			w.bailed = true
			return true
		}

	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanOps(s.Cond, st)
		thenSt, elseSt := st.clone(), st.clone()
		w.refine(s.Cond, thenSt, elseSt)
		tTerm := w.block(s.Body.List, thenSt)
		eTerm := false
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				eTerm = w.block(blk.List, elseSt)
			} else {
				eTerm = w.stmt(s.Else, elseSt)
			}
		}
		switch {
		case tTerm && eTerm:
			return true
		case tTerm:
			*st = *elseSt
		case eTerm:
			*st = *thenSt
		default:
			*st = *union(thenSt, elseSt)
		}

	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanOps(s.Cond, st)
		}
		w.loopDepth++
		w.breaks = append(w.breaks, nil)
		bodySt := st.clone()
		bodyTerm := w.block(s.Body.List, bodySt)
		if s.Post != nil && !bodyTerm {
			w.stmt(s.Post, bodySt)
		}
		breakSt := w.breaks[len(w.breaks)-1]
		w.breaks = w.breaks[:len(w.breaks)-1]
		w.loopDepth--
		if s.Cond == nil {
			// for{}: only break exits. No break and a terminated body
			// means nothing falls through.
			if breakSt == nil {
				return true
			}
			*st = *breakSt
		} else {
			after := []*flowState{st, breakSt}
			if !bodyTerm {
				after = append(after, bodySt)
			}
			*st = *union(after...)
		}

	case *ast.RangeStmt:
		w.scanOps(s.X, st)
		w.loopDepth++
		w.breaks = append(w.breaks, nil)
		bodySt := st.clone()
		bodyTerm := w.block(s.Body.List, bodySt)
		breakSt := w.breaks[len(w.breaks)-1]
		w.breaks = w.breaks[:len(w.breaks)-1]
		w.loopDepth--
		after := []*flowState{st, breakSt}
		if !bodyTerm {
			after = append(after, bodySt)
		}
		*st = *union(after...)

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanOps(s.Tag, st)
		}
		return w.clauses(s.Body.List, st, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		return w.clauses(s.Body.List, st, false)

	case *ast.SelectStmt:
		if w.cfg.onChan != nil && len(w.activeLive(st)) > 0 {
			w.cfg.onChan(s.Pos(), "select", w.activeLive(st))
		}
		return w.clauses(s.Body.List, st, true)

	case *ast.SendStmt:
		if w.cfg.onChan != nil && len(w.activeLive(st)) > 0 {
			w.cfg.onChan(s.Arrow, "channel send", w.activeLive(st))
		}
		if w.cfg.transferValues {
			w.transferScan([]ast.Expr{s.Value}, st)
		}

	case *ast.GoStmt:
		// The goroutine body is analyzed as its own unit; passing a
		// tracked value into it transfers ownership.
		if w.cfg.transferValues {
			w.transferScan(s.Call.Args, st)
		}

	case *ast.BlockStmt:
		return w.block(s.List, st)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	default:
		w.scanOps(s, st)
	}
	return false
}

// clauses walks switch/select case bodies from a shared entry state
// and unions the arms. commBlocks means clause-level comm statements
// (select) are walked as statements first.
func (w *flowWalker) clauses(list []ast.Stmt, st *flowState, comm bool) bool {
	var ends []*flowState
	hasDefault := false
	allTerm := true
	for _, c := range list {
		var body []ast.Stmt
		cSt := st.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.scanOps(e, cSt)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.stmt(c.Comm, cSt)
			}
			body = c.Body
		}
		if w.block(body, cSt) {
			continue
		}
		allTerm = false
		ends = append(ends, cSt)
	}
	if !hasDefault && !comm {
		// A value switch without default can match nothing.
		ends = append(ends, st)
		allTerm = false
	}
	if allTerm && len(list) > 0 {
		return true
	}
	*st = *union(ends...)
	return false
}

// handleCall applies release then acquire semantics for one call.
func (w *flowWalker) handleCall(call *ast.CallExpr, lhs []ast.Expr, st *flowState) {
	if w.cfg.releaseKey != nil {
		if key := w.cfg.releaseKey(call); key != "" {
			st.removeKey(key, false)
			return
		}
	}
	if w.cfg.acquire == nil {
		return
	}
	r := w.cfg.acquire(call, lhs, st.live)
	if r == nil {
		return
	}
	// Acquire straight into long-lived state (a.buf = GetBatch())
	// transfers ownership at birth.
	if w.cfg.transferValues && len(lhs) > 0 {
		if _, isIdent := lhs[0].(*ast.Ident); !isIdent {
			return
		}
	}
	r.loopDepth = w.loopDepth
	st.add(r)
}

// deferredRelease handles `defer release(...)` and
// `defer func(){ release(...) }()`.
func (w *flowWalker) deferredRelease(call *ast.CallExpr, st *flowState) {
	if w.cfg.releaseKey == nil {
		return
	}
	if key := w.cfg.releaseKey(call); key != "" {
		st.removeKey(key, w.cfg.deferKeepsHeld)
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if key := w.cfg.releaseKey(inner); key != "" {
					st.removeKey(key, w.cfg.deferKeepsHeld)
				}
			}
			return true
		})
	}
}

// continueLeaks reports resources acquired inside the loop being
// continued: the next iteration re-acquires without releasing.
func (w *flowWalker) continueLeaks(s *ast.BranchStmt, st *flowState) {
	if !w.cfg.reportLeaks {
		return
	}
	line := w.cfg.pass.Position(s.Pos()).Line
	for _, r := range st.live {
		if r.deferred || r.reported || r.loopDepth < w.loopDepth {
			continue
		}
		r.reported = true
		r := r
		w.reports = append(w.reports, func() {
			w.cfg.pass.Reportf(r.pos, w.cfg.leakCode,
				"%s is not released before the continue at line %d — the next iteration acquires again", r.what, line)
		})
	}
}

// invalidateErrVars drops error-variable refinement for resources
// whose error result is reassigned: after `slot, err := other()`, the
// truth of `err != nil` says nothing about the original acquire.
func (w *flowWalker) invalidateErrVars(s *ast.AssignStmt, st *flowState) {
	for _, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.cfg.pass.ObjectOf(id)
		if obj == nil {
			continue
		}
		for _, r := range st.live {
			if r.errVar == obj {
				r.errVar = nil
			}
		}
	}
}

// refine narrows branch states using acquire-error polarity:
// `err != nil` entering the then-branch means the acquire failed, so
// the obligation cannot be live there.
func (w *flowWalker) refine(cond ast.Expr, thenSt, elseSt *flowState) {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		w.refine(c.X, thenSt, elseSt)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			w.refine(c.X, elseSt, thenSt)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			// Both operands are true in the then-branch; the
			// else-branch learns nothing.
			w.refine(c.X, thenSt, nil)
			w.refine(c.Y, thenSt, nil)
		case token.LOR:
			// Both operands are false in the else-branch.
			w.refine(c.X, nil, elseSt)
			w.refine(c.Y, nil, elseSt)
		case token.NEQ:
			if obj := errOperand(w.cfg.pass, c.X, c.Y); obj != nil {
				dropErrResource(thenSt, obj)
			}
		case token.EQL:
			if obj := errOperand(w.cfg.pass, c.X, c.Y); obj != nil {
				dropErrResource(elseSt, obj)
			}
		}
	case *ast.CallExpr:
		// errors.Is(err, X) true implies err != nil.
		if obj := errorsIsOperand(w.cfg.pass, c); obj != nil {
			dropErrResource(thenSt, obj)
		}
	}
}

func dropErrResource(st *flowState, obj types.Object) {
	if st == nil {
		return
	}
	out := st.live[:0]
	for _, r := range st.live {
		if r.errVar == obj {
			continue
		}
		out = append(out, r)
	}
	st.live = out
}

// errOperand returns the object of an `x` in `x op nil` / `nil op x`.
func errOperand(pass *Pass, x, y ast.Expr) types.Object {
	if isNil(pass, y) {
		if id, ok := x.(*ast.Ident); ok {
			return pass.ObjectOf(id)
		}
	}
	if isNil(pass, x) {
		if id, ok := y.(*ast.Ident); ok {
			return pass.ObjectOf(id)
		}
	}
	return nil
}

// errorsIsOperand returns the object of err in errors.Is(err, …).
func errorsIsOperand(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Is" || len(call.Args) < 1 {
		return nil
	}
	if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "errors" {
		return nil
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return pass.ObjectOf(id)
	}
	return nil
}

func isNil(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.ObjectOf(id).(*types.Nil)
	return isNilObj
}

func isPanic(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "panic"
}

// activeLive filters out deferred-released resources (already covered
// obligations are exempt from point checks only in analyses where the
// deferred release has discharged them; latchorder keeps them).
func (w *flowWalker) activeLive(st *flowState) []*resource {
	return st.live
}

// scanOps runs the point-check callbacks (onCall, onChan) over every
// call and channel receive inside n, skipping nested function
// literals (independent units).
func (w *flowWalker) scanOps(n ast.Node, st *flowState) {
	if w.cfg.onCall == nil && w.cfg.onChan == nil {
		return
	}
	live := w.activeLive(st)
	if len(live) == 0 {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if w.cfg.onCall != nil {
				w.cfg.onCall(x, live)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && w.cfg.onChan != nil {
				w.cfg.onChan(x.Pos(), "channel receive", live)
			}
		}
		return true
	})
}

// transferScan removes obligations whose value escapes by being a
// direct return/assign/send operand or a composite-literal element.
// Plain argument passing is a borrow, not a transfer (NextBatch(b)
// refills the caller's batch), so it does not discharge.
func (w *flowWalker) transferScan(exprs []ast.Expr, st *flowState) {
	for _, e := range exprs {
		w.transferExpr(e, st)
	}
}

func (w *flowWalker) transferExpr(e ast.Expr, st *flowState) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.cfg.pass.ObjectOf(e)
		if obj == nil {
			return
		}
		for _, r := range st.live {
			if r.val != nil && r.val == obj {
				st.remove(r)
				return
			}
		}
	case *ast.ParenExpr:
		w.transferExpr(e.X, st)
	case *ast.UnaryExpr:
		w.transferExpr(e.X, st)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				w.transferExpr(kv.Value, st)
			} else {
				w.transferExpr(elt, st)
			}
		}
	}
}

// allBlank reports whether every assignment target is the blank
// identifier (a `_ = b` keep-alive is not an ownership transfer).
func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// --- shared type helpers -------------------------------------------------

// namedTypeName returns the name of e's (pointer-stripped) named type,
// or "".
func namedTypeName(pass *Pass, e ast.Expr) string {
	t := pass.TypeOf(e)
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// methodCall decomposes a call of the form recv.Name(args) and
// returns the receiver expression, or nil if the call is not a
// selector call with that method name.
func methodCall(call *ast.CallExpr, name string) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	return sel.X
}

// calleeName returns the (possibly package-qualified) simple name a
// call invokes, for matching free functions like GetBatch.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if _, ok := f.X.(*ast.Ident); ok {
			return f.Sel.Name
		}
	}
	return ""
}

// isFuncValueCall reports whether call invokes a function value (a
// parameter, local, or struct field of function or *function type)
// rather than a declared function, method, conversion, or builtin.
func isFuncValueCall(pass *Pass, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	deref := false
	if star, ok := fun.(*ast.StarExpr); ok {
		fun = ast.Unparen(star.X)
		deref = true
	}
	isSig := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if deref {
			p, ok := t.Underlying().(*types.Pointer)
			if !ok {
				return false
			}
			t = p.Elem()
		}
		_, ok := t.Underlying().(*types.Signature)
		return ok
	}
	switch f := fun.(type) {
	case *ast.Ident:
		v, ok := pass.ObjectOf(f).(*types.Var)
		return ok && isSig(v.Type())
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[f]; ok {
			return sel.Kind() == types.FieldVal && isSig(sel.Type())
		}
	}
	return false
}

package analysis

import (
	"fmt"
	"go/ast"
)

// Batchrelease enforces the sync.Pool batch discipline: every batch
// taken with GetBatch is either PutBatch-ed on every path or has its
// ownership transferred (returned, stored into a struct field that a
// Close method releases, sent to a consumer). A batch that simply
// goes out of scope is a pool leak — invisible to correctness tests
// but a steady allocation regression, which is exactly what the
// bench-baseline gate would eventually catch the slow way.
var Batchrelease = &Analyzer{
	Name: "batchrelease",
	Doc:  "pooled batches are released or ownership-transferred on every path",
	Run:  runBatchrelease,
}

func runBatchrelease(pass *Pass) {
	objKey := func(id *ast.Ident) string {
		obj := pass.ObjectOf(id)
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("obj:%p", obj)
	}
	runFlow(&flowConfig{
		pass: pass,
		acquire: func(call *ast.CallExpr, lhs []ast.Expr, live []*resource) *resource {
			if calleeName(call) != "GetBatch" || len(call.Args) != 0 {
				return nil
			}
			if namedTypeName(pass, call) != "Batch" {
				return nil
			}
			if len(lhs) == 0 {
				pass.Reportf(call.Pos(), "batch-discard",
					"result of GetBatch is discarded — the batch can never return to the pool")
				return nil
			}
			id, ok := lhs[0].(*ast.Ident)
			if !ok {
				// Acquired straight into a field or element:
				// ownership transfers at birth (handled by the walker).
				return &resource{pos: call.Pos()}
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "batch-discard",
					"result of GetBatch is discarded — the batch can never return to the pool")
				return nil
			}
			return &resource{
				key:  objKey(id),
				pos:  call.Pos(),
				what: fmt.Sprintf("pooled batch %q", id.Name),
				val:  pass.ObjectOf(id),
			}
		},
		releaseKey: func(call *ast.CallExpr) string {
			if calleeName(call) != "PutBatch" || len(call.Args) != 1 {
				return ""
			}
			if id, ok := call.Args[0].(*ast.Ident); ok {
				return objKey(id)
			}
			return ""
		},
		transferValues: true,
		reportLeaks:    true,
		leakCode:       "batch-leak",
	})
}

// Package analysis is the engine-invariant static-analysis layer: a
// small, dependency-free analogue of golang.org/x/tools/go/analysis
// that encodes the resource and concurrency disciplines accumulated by
// the storage and operator layers (buffer-pool pins, pooled batches,
// the latch hierarchy, ErrDBFailed poisoning, containPanic at morsel
// sites) as checkable rules over the Go source. cmd/admvet is the
// multichecker front end; ci.sh runs it alongside admlint.
//
// The loader shells out to `go list -deps -json` (available offline —
// it only reads the module on disk) to obtain the package graph in
// dependency order, then parses and type-checks every package from
// source with go/types. Standard-library and dependency-only packages
// are checked with IgnoreFuncBodies, so a full-repo load stays under a
// second.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// mapImporter resolves imports from packages already type-checked this
// load, in the dependency order `go list -deps` guarantees.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("analysis: import %q not loaded", path)
}

// Load resolves patterns (e.g. "./...") relative to dir and returns
// the matched packages, type-checked from source. Dependencies are
// loaded for type information but not returned. Parse or type errors
// in a matched package fail the load; errors confined to dependencies
// are tolerated (their exported API is usually still usable).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	raw, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	return typeCheck(raw)
}

// LoadDir parses every non-test .go file in dir as a single package
// (the fixture-directory mode of cmd/admvet and the analyzer tests).
// Imports are resolved through the regular loader, so fixtures may
// import the standard library.
func LoadDir(dir string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	imports := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
		for _, imp := range af.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}

	// Type-check the fixture's imports (stdlib) first, then the
	// fixture itself against them.
	loaded := mapImporter{"unsafe": types.Unsafe}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		deps, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		if err := checkInto(loaded, fset, deps, nil); err != nil {
			return nil, err
		}
	}
	pkgName := parsed[0].Name.Name
	pkg, info, err := checkPkg(loaded, fset, pkgName, parsed, false)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	return []*Package{{Path: pkgName, Dir: dir, Fset: fset, Files: parsed, Types: pkg, Info: info}}, nil
}

// goList runs `go list -deps -json` for patterns in dir.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for dec.More() {
		p := &listPkg{}
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typeCheck checks every listed package in order and returns the
// target (non-dependency) packages with full syntax and type info.
func typeCheck(raw []*listPkg) ([]*Package, error) {
	fset := token.NewFileSet()
	loaded := mapImporter{"unsafe": types.Unsafe}
	var targets []*Package
	err := checkInto(loaded, fset, raw, func(p *listPkg, files []*ast.File, pkg *types.Package, info *types.Info) {
		targets = append(targets, &Package{
			Path: p.ImportPath, Dir: p.Dir, Fset: fset, Files: files, Types: pkg, Info: info,
		})
	})
	if err != nil {
		return nil, err
	}
	return targets, nil
}

// checkInto type-checks each listed package into loaded. onTarget, if
// non-nil, is invoked for packages that were named by the load
// patterns (not Standard, not DepOnly); those are checked with full
// function bodies and strict errors.
func checkInto(loaded mapImporter, fset *token.FileSet, raw []*listPkg,
	onTarget func(*listPkg, []*ast.File, *types.Package, *types.Info)) error {
	for _, p := range raw {
		if p.ImportPath == "unsafe" {
			continue
		}
		target := !p.Standard && !p.DepOnly && onTarget != nil
		var files []*ast.File
		for _, f := range p.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(p.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				if target {
					return fmt.Errorf("analysis: %w", err)
				}
				continue
			}
			files = append(files, af)
		}
		pkg, info, err := checkPkg(loaded, fset, p.ImportPath, files, !target)
		if err != nil && target {
			return fmt.Errorf("analysis: %s: %w", p.ImportPath, err)
		}
		if pkg != nil {
			loaded[p.ImportPath] = pkg
		}
		if target && err == nil {
			onTarget(p, files, pkg, info)
		}
	}
	return nil
}

// checkPkg type-checks one package's files against loaded imports.
func checkPkg(loaded mapImporter, fset *token.FileSet, path string, files []*ast.File, bodiesOptional bool) (*types.Package, *types.Info, error) {
	var firstErr error
	conf := types.Config{
		Importer:         loaded,
		IgnoreFuncBodies: bodiesOptional,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return pkg, info, firstErr
	}
	return pkg, info, err
}

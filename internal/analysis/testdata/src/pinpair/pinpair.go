// Package pinpair is the golden fixture for the pinpair analyzer:
// stub engine types with the real names, positive cases annotated
// with want-expectations, clean cases that must stay silent, and an
// allow-directive case proving suppression works.
package pinpair

import "errors"

type PageID uint32

type Page struct{}

func (p *Page) Slots() int { return 0 }

type BufferManager struct{}

func (b *BufferManager) GetPage(id PageID) (*Page, error) { return nil, nil }
func (b *BufferManager) Unpin(id PageID)                  {}

var errBad = errors.New("bad")

// leakOnError forgets the unpin on the mid-function error return.
func leakOnError(bm *BufferManager, id PageID) error {
	p, err := bm.GetPage(id) // want "pin of page id is not released"
	if err != nil {
		return err
	}
	if p.Slots() == 0 {
		return errBad
	}
	bm.Unpin(id)
	return nil
}

// leakAtContinue re-acquires the next iteration without releasing.
func leakAtContinue(bm *BufferManager, ids []PageID) {
	for _, id := range ids {
		p, err := bm.GetPage(id) // want "before the continue"
		if err != nil {
			return
		}
		if p.Slots() == 0 {
			continue
		}
		bm.Unpin(id)
	}
}

// callbackUnderPin holds a non-deferred pin across caller code.
func callbackUnderPin(bm *BufferManager, id PageID, fn func() bool) {
	p, err := bm.GetPage(id)
	if err != nil {
		return
	}
	_ = p
	fn() // want "held across a call to an opaque function value"
	bm.Unpin(id)
}

// cleanDefer is the canonical shape: defer covers every path,
// including a panicking callback.
func cleanDefer(bm *BufferManager, id PageID, fn func() bool) error {
	p, err := bm.GetPage(id)
	if err != nil {
		return err
	}
	defer bm.Unpin(id)
	if p.Slots() == 0 {
		return errBad
	}
	fn()
	return nil
}

// cleanBranches releases explicitly on every path, with errors.Is
// refinement on the quarantine skip.
func cleanBranches(bm *BufferManager, ids []PageID) error {
	for _, id := range ids {
		p, err := bm.GetPage(id)
		if errors.Is(err, errBad) {
			continue
		}
		if err != nil {
			return err
		}
		if p.Slots() < 0 {
			bm.Unpin(id)
			return errBad
		}
		bm.Unpin(id)
	}
	return nil
}

// allowEscape hands the pinned page to the caller by contract.
func allowEscape(bm *BufferManager, id PageID) (*Page, error) {
	p, err := bm.GetPage(id) //admvet:allow pinpair caller receives the page pinned and owns the unpin
	return p, err
}

// Package latchorder is the golden fixture for the latchorder
// analyzer: stub types carrying the hierarchy's names, with ordered
// and inverted acquisitions, latches held across blocking operations,
// and an //admvet:allow durability-barrier case.
package latchorder

import "sync"

type Catalog struct{ mu sync.RWMutex }

type Table struct{ mu sync.RWMutex }

type Page struct{ mu sync.RWMutex }

type disk struct{}

func (disk) Sync() error { return nil }

type WAL struct {
	mu   sync.Mutex
	disk disk
}

// inversion acquires the catalog latch under the table latch.
func inversion(c *Catalog, t *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c.mu.Lock() // want "inverts the latch hierarchy"
	c.mu.Unlock()
}

// ordered nests correctly: catalog strictly before table.
func ordered(c *Catalog, t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
}

// sendUnderLatch blocks on a channel while latched.
func sendUnderLatch(p *Page, ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch <- 1 // want "held across a channel send"
}

// fsyncUnderLatch stalls every WAL contender behind the disk.
func fsyncUnderLatch(w *WAL) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.disk.Sync() // want "held across"
}

// callbackUnderLatch runs opaque code under an engine latch.
func callbackUnderLatch(p *Page, fn func()) {
	p.mu.Lock()
	fn() // want "opaque function value"
	p.mu.Unlock()
}

// leakLatch forgets the unlock on the early return.
func leakLatch(t *Table, n int) {
	t.mu.Lock() // want "is not released"
	if n > 0 {
		return
	}
	t.mu.Unlock()
}

// readThenWrite reacquiring after release is not a violation.
func readThenWrite(t *Table) {
	t.mu.RLock()
	t.mu.RUnlock()
	t.mu.Lock()
	t.mu.Unlock()
}

// allowFsync is the append+fsync durability barrier.
func allowFsync(w *WAL) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	//admvet:allow latchorder the serialised fsync under the WAL latch is the durability contract
	return w.disk.Sync()
}

type Server struct{ mu sync.Mutex }

// serverUnderCatalog acquires the outermost server connection-table
// latch while already holding an engine latch.
func serverUnderCatalog(s *Server, c *Catalog) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.mu.Lock() // want "inverts the latch hierarchy"
	s.mu.Unlock()
}

// Package batchrelease is the golden fixture for the batchrelease
// analyzer: pooled batches must be PutBatch-ed or ownership-
// transferred on every path.
package batchrelease

type Tuple []int

type Batch struct{ Tuples []Tuple }

func GetBatch() *Batch  { return &Batch{} }
func PutBatch(b *Batch) {}

type sink struct{ buf *Batch }

func (s *sink) Close() {
	if s.buf != nil {
		PutBatch(s.buf)
		s.buf = nil
	}
}

// leakOnPath forgets the put on the early return.
func leakOnPath(n int) {
	b := GetBatch() // want "is not released on the path"
	if n > 0 {
		return
	}
	PutBatch(b)
}

// discard drops the pooled value outright.
func discard() {
	GetBatch() // want "result of GetBatch is discarded"
}

// leakAtContinue re-acquires each iteration without releasing.
func leakAtContinue(ns []int) {
	for _, n := range ns {
		b := GetBatch() // want "before the continue"
		if n == 0 {
			continue
		}
		PutBatch(b)
	}
}

// cleanDefer is the worker shape.
func cleanDefer() {
	b := GetBatch()
	defer PutBatch(b)
	b.Tuples = b.Tuples[:0]
}

// transferReturn hands ownership to the caller.
func transferReturn() *Batch {
	b := GetBatch()
	b.Tuples = b.Tuples[:0]
	return b
}

// transferField stores into long-lived state that Close releases.
func (s *sink) fill() {
	s.buf = GetBatch()
}

// transferLit moves the batch into a struct the callee owns.
func transferLit() *sink {
	b := GetBatch()
	return &sink{buf: b}
}

// allowArena retires a batch with its arena on purpose.
func allowArena() {
	b := GetBatch() //admvet:allow batchrelease scratch batch retires with the query arena, never returns to the pool
	_ = b
}

// Package morselguard is the golden fixture for the morselguard
// analyzer: goroutines in packages defining containPanic must defer
// it before any work, with WaitGroup.Done deferred first.
package morselguard

import "sync"

type failFlag struct{}

func containPanic(f *failFlag, worker int, phase string) {}

func work() {}

// guarded is the canonical morsel-worker shape: Done registered
// first so it runs last, after the panic is latched.
func guarded(wg *sync.WaitGroup, fail *failFlag) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer containPanic(fail, 0, "scan")
		work()
	}()
}

// unguarded launches raw work: a panic escapes the morsel boundary.
func unguarded() {
	go func() { // want "does not defer containPanic"
		work()
	}()
}

// notALiteral cannot be checked for containment.
func notALiteral() {
	go work() // want "not a contained worker literal"
}

// lateGuard registers the guard after work has already started.
func lateGuard(fail *failFlag) {
	go func() { // want "does not defer containPanic"
		work()
		defer containPanic(fail, 0, "probe")
	}()
}

// doneAfterGuard would release the barrier before the failure is
// latched: defers run LIFO, so Done must be registered first.
func doneAfterGuard(wg *sync.WaitGroup, fail *failFlag) {
	wg.Add(1)
	go func() {
		defer containPanic(fail, 0, "probe")
		defer wg.Done() // want "Done is deferred after containPanic"
		work()
	}()
}

// allowDetached is a fire-and-forget monitor, not a morsel worker.
func allowDetached() {
	//admvet:allow morselguard monitor goroutine is detached from any morsel barrier by design
	go func() {
		work()
	}()
}

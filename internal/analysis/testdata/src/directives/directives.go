// Package directives is the golden fixture for the //admvet:allow
// directive machinery itself: malformed and unknown-analyzer
// directives are diagnostics, and a directive that suppresses nothing
// is dead weight that must be flagged. The `// want-above` marker
// binds an expectation to the preceding line, since these findings
// anchor on the directive comments themselves.
package directives

//admvet:allow
// want-above "malformed directive"

//admvet:allow nosuchanalyzer some reason
// want-above "unknown analyzer"

//admvet:allow pinpair believed load-bearing but covers nothing
// want-above "suppresses nothing"

func nothing() {}

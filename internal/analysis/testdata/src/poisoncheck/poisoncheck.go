// Package poisoncheck is the golden fixture for the poisoncheck
// analyzer: WAL/page-file errors must propagate, iterator Close
// errors must not be discarded.
package poisoncheck

import "errors"

type WAL struct{}

func (w *WAL) Append(payload []byte) (uint64, error) { return 0, nil }
func (w *WAL) Sync() error                           { return nil }

type PageFile struct{}

func (f *PageFile) WritePage(id uint32, b []byte) error { return nil }

type Iterator interface {
	Open() error
	Close() error
}

// discarded drops the append error on the floor.
func discarded(w *WAL) {
	w.Append(nil) // want "error from WAL.Append is discarded"
}

// blankAssign discards it through the blank identifier.
func blankAssign(w *WAL) uint64 {
	lsn, _ := w.Append(nil) // want "error from WAL.Append is discarded"
	return lsn
}

// swallowed observes the error but the path returns success anyway.
func swallowed(w *WAL) bool {
	_, err := w.Append(nil) // want "tested but never propagated"
	if err != nil {
		return false
	}
	return true
}

// ignored captures the error into a variable that is never used.
func ignored(f *PageFile) {
	err := f.WritePage(0, nil) // want "captured but never used"
	_ = err
}

// propagated returns the observation: the spine stays intact.
func propagated(w *WAL) error {
	_, err := w.Append(nil)
	if err != nil {
		return err
	}
	return w.Sync()
}

// wrapped feeds the error to a poisoning helper.
func wrapped(w *WAL, fail func(error) error) error {
	_, err := w.Append(nil)
	if err != nil {
		return fail(err)
	}
	return nil
}

// closeDiscard drops an iterator Close error via bare defer.
func closeDiscard(it Iterator) error {
	if err := it.Open(); err != nil {
		return err
	}
	defer it.Close() // want "Close error"
	return nil
}

// closeJoined captures the Close error into the named return.
func closeJoined(it Iterator) (err error) {
	if err := it.Open(); err != nil {
		return err
	}
	defer func() { err = errors.Join(err, it.Close()) }()
	return nil
}

// allowTornTail treats a failed read as end-of-log by design.
func allowTornTail(w *WAL) bool {
	_, err := w.Append(nil) //admvet:allow poisoncheck a torn tail record terminates the redo scan by design
	if err != nil {
		return false
	}
	return true
}

type frameConn struct{}

func (fc *frameConn) WriteFrame(t byte, payload []byte) error { return nil }

type DBSession struct{}

func (s *DBSession) Close() error { return nil }

// frameDiscard drops a wire write error, so a torn or stalled
// connection keeps being served as if healthy.
func frameDiscard(fc *frameConn) {
	fc.WriteFrame(0, nil) // want "error from frameConn.WriteFrame is discarded"
}

// sessionCloseDiscard drops the rollback failure inside session close.
func sessionCloseDiscard(s *DBSession) {
	s.Close() // want "error from DBSession.Close is discarded"
}

package analysis

import (
	"go/ast"
	"go/types"
)

// Poisoncheck enforces the failure spine: a path that observes a WAL
// or page-file error must propagate it (return it, pass it to
// db.fail / a wrapper, store it) — never discard it or merely test
// it. A swallowed storage error is how a database acknowledges writes
// it has already lost; the sticky ErrDBFailed poison only works if
// every observation feeds it.
//
// A second rule covers the iterator boundary: Close() errors on the
// engine's Iterator/BatchIterator interfaces surface deferred storage
// failures, so discarding them (bare call, bare defer, blank assign)
// is flagged — join them with the path error or capture them via a
// named-return defer.
var Poisoncheck = &Analyzer{
	Name: "poisoncheck",
	Doc:  "WAL/page-file errors propagate through the ErrDBFailed spine; iterator Close errors are not discarded",
	Run:  runPoisoncheck,
}

// spineReceivers maps receiver type names to the method sets whose
// errors are storage-failure observations. A nil set means every
// error-returning method (the DiskFile interface is all I/O).
var spineReceivers = map[string]map[string]bool{
	"WAL":      {"Append": true, "Sync": true},
	"PageFile": {"WritePage": true, "ReadPage": true, "FrameLSN": true, "Sync": true},
	"DiskFile": nil,
	// The transaction commit path: a discarded Commit error means the
	// caller acknowledges writes whose commit record may never have
	// become durable. Rollback is deliberately NOT in the spine — it
	// is idempotent cleanup (`defer tx.Rollback()` is the idiom) and
	// any WAL failure inside it has already poisoned the DB.
	"TxnManager": {"commitTxn": true, "commitBatch": true, "abortTxn": true},
	"Txn":        {"Commit": true},
	// Zone-map builds read and decode every page of the file; an error
	// is a page-read failure, and on the durable build points
	// (Checkpoint, recovery) it must reach DB.fail, never be dropped.
	"HeapFile": {"BuildZoneMaps": true},
	// The server's wire layer: a discarded frame error means a torn or
	// stalled connection keeps being served as if healthy. Session
	// close rolls back any open transaction; dropping its error leaks
	// the rollback failure.
	"frameConn": {"ReadFrame": true, "WriteFrame": true, "Flush": true},
	"DBSession": {"Close": true},
}

func runPoisoncheck(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpineCalls(pass, fd.Body)
			checkCloseDiscards(pass, fd.Body)
		}
	}
}

// walkStack visits every node with its ancestor chain (outermost
// first, excluding the node itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// spineCallName classifies a call as a storage-spine observation,
// returning a display name like "WAL.Append".
func spineCallName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recvType := namedTypeName(pass, sel.X)
	methods, ok := spineReceivers[recvType]
	if !ok {
		return ""
	}
	if methods != nil && !methods[sel.Sel.Name] {
		return ""
	}
	if errResultIndex(pass, call) < 0 {
		return ""
	}
	return recvType + "." + sel.Sel.Name
}

// errResultIndex returns the index of the call's error result, or -1.
func errResultIndex(pass *Pass, call *ast.CallExpr) int {
	t := pass.TypeOf(call)
	if t == nil {
		return -1
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := tuple.Len() - 1; i >= 0; i-- {
			if isErrorType(tuple.At(i).Type()) {
				return i
			}
		}
		return -1
	}
	if isErrorType(t) {
		return 0
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// checkSpineCalls verifies every spine observation in body is
// propagated, not discarded or condition-tested into oblivion.
func checkSpineCalls(pass *Pass, body *ast.BlockStmt) {
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name := spineCallName(pass, call)
		if name == "" || len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "poison-discard",
				"error from %s is discarded — propagate it or poison via the ErrDBFailed spine", name)
		case *ast.AssignStmt:
			if len(parent.Rhs) != 1 || parent.Rhs[0] != ast.Expr(call) {
				return
			}
			idx := errResultIndex(pass, call)
			if idx >= len(parent.Lhs) {
				return
			}
			id, ok := parent.Lhs[idx].(*ast.Ident)
			if !ok {
				return
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "poison-discard",
					"error from %s is discarded — propagate it or poison via the ErrDBFailed spine", name)
				return
			}
			checkErrUsage(pass, body, call, name, pass.ObjectOf(id))
		}
		// Any other parent (return, call argument, if-init handled as
		// AssignStmt, binary expr) keeps the error in an expression
		// that flows somewhere — the surrounding context owns it.
	})
}

// checkErrUsage classifies every later use of the observed error:
// at least one use must escape the function (return, call argument,
// store, defer); uses confined to conditions are tests, not
// propagation.
func checkErrUsage(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr, name string, errObj types.Object) {
	if errObj == nil {
		return
	}
	propagated := false
	tested := false
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		if propagated {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= call.End() || pass.ObjectOf(id) != errObj {
			return
		}
		switch classifyErrUse(stack, id) {
		case "propagated":
			propagated = true
		case "condition":
			tested = true
		}
	})
	switch {
	case propagated:
	case tested:
		pass.Reportf(call.Pos(), "poison-swallow",
			"error from %s is tested but never propagated — a path that observes it returns success; route it through the ErrDBFailed spine", name)
	default:
		pass.Reportf(call.Pos(), "poison-ignore",
			"error from %s is captured but never used — propagate it or poison via the ErrDBFailed spine", name)
	}
}

// classifyErrUse ascends from an identifier use to decide whether the
// error escapes ("propagated") or is only branched on ("condition").
func classifyErrUse(stack []ast.Node, id ast.Node) string {
	child := id
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if child == ast.Node(n.Cond) {
				return "condition"
			}
			return "propagated" // init/else position: some statement form
		case *ast.ForStmt:
			if child == ast.Node(n.Cond) {
				return "condition"
			}
			return "propagated"
		case *ast.SwitchStmt:
			if n.Tag != nil && child == ast.Node(n.Tag) {
				return "condition"
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if child == ast.Node(e) {
					return "condition"
				}
			}
		case *ast.ReturnStmt, *ast.DeferStmt, *ast.SendStmt, *ast.GoStmt:
			return "propagated"
		case *ast.AssignStmt:
			for _, e := range n.Rhs {
				if child == ast.Node(e) {
					if allBlank(n.Lhs) {
						return "discard" // a blank keep-alive is no use at all
					}
					return "propagated"
				}
			}
			return "condition" // LHS reassignment is not a use that escapes
		case *ast.ExprStmt:
			return "propagated" // bare call with err as argument (db.fail(err))
		case *ast.CompositeLit:
			return "propagated"
		case *ast.FuncLit:
			return "propagated" // captured by a closure: assume it escapes there
		}
		child = stack[i]
	}
	return "condition"
}

// checkCloseDiscards flags discarded Close errors on the engine
// iterator interfaces.
func checkCloseDiscards(pass *Pass, body *ast.BlockStmt) {
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(stack) == 0 {
			return
		}
		recv := methodCall(call, "Close")
		if recv == nil || len(call.Args) != 0 {
			return
		}
		tn := namedTypeName(pass, recv)
		if tn != "Iterator" && tn != "BatchIterator" {
			return
		}
		discarded := false
		switch parent := stack[len(stack)-1].(type) {
		case *ast.ExprStmt, *ast.DeferStmt:
			discarded = true
		case *ast.AssignStmt:
			if len(parent.Rhs) == 1 && parent.Rhs[0] == ast.Expr(call) {
				blank := true
				for _, l := range parent.Lhs {
					if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
						blank = false
					}
				}
				discarded = blank
			}
		}
		if discarded {
			pass.Reportf(call.Pos(), "close-discard",
				"Close error on %s is discarded — it surfaces deferred storage failures; join it with the path error (errors.Join) or capture it via a named-return defer",
				types.ExprString(recv))
		}
	})
}

package analysis

import (
	"go/token"
	"strings"

	"github.com/adm-project/adm/internal/lint"
)

// A directive is one parsed //admvet:allow comment. It suppresses
// matching diagnostics on its own line (trailing form) or the line
// directly below (own-line form). The used flag feeds the
// unused-allow check in RunAnalyzers.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "admvet:allow"

// collectDirectives parses every //admvet:allow comment in the
// package. Malformed directives (missing analyzer or reason, or an
// analyzer name not in the suite) are reported as diagnostics — a
// silently ignored suppression is worse than none.
func collectDirectives(pkg *Package) ([]*directive, []lint.Diagnostic) {
	var dirs []*directive
	var diags []lint.Diagnostic
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) < 2 {
					diags = append(diags, lint.Errorf(pos.Filename, pos.Line, pos.Column,
						"admvet", "malformed-allow",
						"malformed directive: want //admvet:allow <analyzer> <reason>"))
					continue
				}
				if !known[fields[0]] {
					diags = append(diags, lint.Errorf(pos.Filename, pos.Line, pos.Column,
						"admvet", "unknown-analyzer",
						"//admvet:allow names unknown analyzer %q", fields[0]))
					continue
				}
				dirs = append(dirs, &directive{
					pos:      pos,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, diags
}

// applyDirectives filters raw diagnostics through the directives,
// marking each directive that suppressed at least one finding.
func applyDirectives(dirs []*directive, raw []lint.Diagnostic) []lint.Diagnostic {
	if len(dirs) == 0 {
		return raw
	}
	var kept []lint.Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, dir := range dirs {
			if dir.analyzer != d.Analyzer || dir.pos.Filename != d.File {
				continue
			}
			if d.Line == dir.pos.Line || d.Line == dir.pos.Line+1 {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

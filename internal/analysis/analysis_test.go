package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/lint"
)

// want is one expectation parsed from a fixture comment:
//
//	expr() // want "substring" ["substring" ...]
//	// want-above "substring"   (binds to the preceding line)
type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

var wantRe = regexp.MustCompile(`// want(-above)?\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"([^"]*)"`)

func collectWants(pkg *Package) []*want {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] == "-above" {
					line--
				}
				for _, q := range quotedRe.FindAllStringSubmatch(m[2], -1) {
					wants = append(wants, &want{file: pos.Filename, line: line, substr: q[1]})
				}
			}
		}
	}
	return wants
}

// runFixture loads one testdata package, runs the analyzers, and
// checks the diagnostics against the want expectations exactly:
// every want fires, nothing unexpected fires.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags := RunAnalyzers(pkgs, analyzers)
	wants := collectWants(pkgs[0])
	if len(wants) == 0 {
		t.Fatalf("%s: fixture has no // want expectations", dir)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic containing %q did not fire", w.file, w.line, w.substr)
		}
	}
}

func TestPinpairFixture(t *testing.T)      { runFixture(t, "pinpair", []*Analyzer{Pinpair}) }
func TestBatchreleaseFixture(t *testing.T) { runFixture(t, "batchrelease", []*Analyzer{Batchrelease}) }
func TestLatchorderFixture(t *testing.T)   { runFixture(t, "latchorder", []*Analyzer{Latchorder}) }
func TestPoisoncheckFixture(t *testing.T)  { runFixture(t, "poisoncheck", []*Analyzer{Poisoncheck}) }
func TestMorselguardFixture(t *testing.T)  { runFixture(t, "morselguard", []*Analyzer{Morselguard}) }

// TestDirectivesFixture exercises the allow-directive machinery:
// malformed, unknown-analyzer, and unused directives are findings.
func TestDirectivesFixture(t *testing.T) { runFixture(t, "directives", All()) }

// TestRepoIsClean is the meta-test: the full suite over the whole
// repository must be silent — every true positive fixed, every
// intentional exception carrying a load-bearing allow directive.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags := RunAnalyzers(pkgs, All())
	for _, d := range diags {
		t.Errorf("repo not admvet-clean: %s", d)
	}
}

// TestSuiteShape pins the analyzer roster: adding or removing an
// analyzer must be a conscious change (ci.sh negative-fixture loop
// iterates these names).
func TestSuiteShape(t *testing.T) {
	names := []string{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name/doc/run", a)
		}
		names = append(names, a.Name)
	}
	got := strings.Join(names, ",")
	wantNames := "pinpair,batchrelease,latchorder,poisoncheck,morselguard"
	if got != wantNames {
		t.Errorf("suite = %s, want %s", got, wantNames)
	}
	if ByName([]string{"pinpair", "latchorder"}) == nil {
		t.Error("ByName rejected valid names")
	}
	if ByName([]string{"nope"}) != nil {
		t.Error("ByName accepted an unknown name")
	}
}

// TestDiagnosticSchema locks the admlint/admvet shared JSON schema:
// one format for every load-time checker in the stack.
func TestDiagnosticSchema(t *testing.T) {
	var buf strings.Builder
	d := lint.Errorf("f.go", 3, 7, "pinpair", "pin-leak", "msg")
	if err := lint.WriteJSON(&buf, []lint.Diagnostic{d}); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"file"`, `"line"`, `"col"`, `"severity"`, `"analyzer"`, `"code"`, `"message"`} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("JSON output missing %s field: %s", field, buf.String())
		}
	}
}

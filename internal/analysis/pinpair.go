package analysis

import (
	"go/ast"
	"go/types"
)

// Pinpair enforces the buffer-pool pin discipline: every
// BufferManager.GetPage has a matching Unpin on every path out of the
// function — error returns, early returns, loop continues — and a pin
// is never held across a call to an opaque function value (a
// panicking callback would skip a non-deferred Unpin; the panic is
// contained at the morsel boundary, so the leaked pin survives).
// This is the static form of the PinnedFrames leak-audit tests.
var Pinpair = &Analyzer{
	Name: "pinpair",
	Doc:  "BufferManager pins are unpinned on all paths and never held across opaque callbacks",
	Run:  runPinpair,
}

func runPinpair(pass *Pass) {
	pinKey := func(call *ast.CallExpr, method string) string {
		recv := methodCall(call, method)
		if recv == nil || len(call.Args) != 1 {
			return ""
		}
		if namedTypeName(pass, recv) != "BufferManager" {
			return ""
		}
		return types.ExprString(recv) + "\x00" + types.ExprString(call.Args[0])
	}
	runFlow(&flowConfig{
		pass: pass,
		acquire: func(call *ast.CallExpr, lhs []ast.Expr, live []*resource) *resource {
			key := pinKey(call, "GetPage")
			if key == "" {
				return nil
			}
			r := &resource{
				key:  key,
				pos:  call.Pos(),
				what: "pin of page " + types.ExprString(call.Args[0]),
			}
			if len(lhs) == 2 {
				if id, ok := lhs[1].(*ast.Ident); ok {
					r.errVar = pass.ObjectOf(id)
				}
			}
			return r
		},
		releaseKey: func(call *ast.CallExpr) string {
			return pinKey(call, "Unpin")
		},
		onCall: func(call *ast.CallExpr, live []*resource) {
			if !isFuncValueCall(pass, call) {
				return
			}
			for _, r := range live {
				pass.Reportf(call.Pos(), "pin-across-callback",
					"%s (acquired line %d) is held across a call to an opaque function value with no deferred Unpin — a panicking callback leaks the pin",
					r.what, pass.Position(r.pos).Line)
			}
		},
		reportLeaks: true,
		leakCode:    "pin-leak",
	})
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Latchorder checks lock acquisitions against the engine's declared
// latch hierarchy — catalog → table → heap file → buffer → page →
// db → WAL — flagging (a) acquisitions that violate the order (the
// classic deadlock recipe), (b) classified latches held across
// channel operations or fsync-class calls (both can block
// indefinitely, serialising the engine behind a latch), (c) latches
// held across calls to opaque function values (a callback must never
// run under an engine latch), and (d) paths that return without
// releasing a latch at all.
//
// Only latches in the declared hierarchy are tracked; incidental
// mutexes (trace sinks, session registries, worker fail flags) are
// deliberately out of scope so the analyzer stays quiet where the
// ordering argument does not apply.
var Latchorder = &Analyzer{
	Name: "latchorder",
	Doc:  "latch acquisitions respect the catalog→table→page→WAL hierarchy and never span blocking ops",
	Run:  runLatchorder,
}

// latchClass places one (owner type, field) mutex in the hierarchy.
type latchClass struct {
	level int
	label string
}

// latchLevels is the declared hierarchy. Lower levels must be
// acquired first; two latches at the same level must never be held
// together by one goroutine.
var latchLevels = map[[2]string]latchClass{
	// The network server's latches are outermost: the connection
	// table (Server.mu) and the controller's latency window
	// (Controller.mu) are taken and released around engine calls,
	// never while any engine latch is held, and no engine code can
	// call back into them.
	{"Server", "mu"}:     {4, "server-conns"},
	{"Controller", "mu"}: {6, "server-controller"},
	{"Catalog", "mu"}:    {10, "catalog"},
	{"Table", "mu"}:      {20, "table"},
	{"HeapFile", "mu"}:   {30, "heap-file"},
	// The zone-map latch protects only the per-page summary table and
	// its generation counters; it is never held across a page read or
	// any callback (BuildZoneMaps decodes pages outside it), so it sits
	// between the heap-file latch and the buffer latches.
	{"ZoneMaps", "mu"}:                {35, "zone-map"},
	{"BufferManager", "quarantineMu"}: {38, "buffer-quarantine"},
	{"bufShard", "mu"}:                {40, "buffer-shard"},
	{"lockedPolicy", "mu"}:            {42, "replacement-policy"},
	{"storeShard", "mu"}:              {45, "store-shard"},
	{"Page", "mu"}:                    {50, "page"},
	// The MVCC component's latches sit between the page latch and the
	// DB/WAL latches: visibility checks take txn-manager (read-side)
	// under a page latch, and the group-commit queue latch is never
	// held across any other acquisition (the leader drains the queue,
	// releases it, then appends/syncs/publishes).
	{"TxnManager", "gcMu"}:   {53, "txn-commit"},
	{"TxnManager", "mu"}:     {55, "txn-manager"},
	{"TxnManager", "statMu"}: {56, "txn-stats"},
	{"DB", "mu"}:             {60, "db"},
	{"WAL", "mu"}:            {70, "wal"},
	{"DB", "dirtyMu"}:        {80, "dirty-table"},
}

// classifyLatch resolves a Lock/Unlock receiver like `sh.mu` to its
// hierarchy class via (owner type name, field name).
func classifyLatch(pass *Pass, recv ast.Expr) (latchClass, string, bool) {
	sel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return latchClass{}, "", false
	}
	owner := namedTypeName(pass, sel.X)
	if owner == "" {
		return latchClass{}, "", false
	}
	cls, ok := latchLevels[[2]string{owner, sel.Sel.Name}]
	return cls, types.ExprString(recv), ok
}

func runLatchorder(pass *Pass) {
	latchCall := func(call *ast.CallExpr, names ...string) (latchClass, string, bool) {
		for _, n := range names {
			if recv := methodCall(call, n); recv != nil && len(call.Args) == 0 {
				return classifyLatch(pass, recv)
			}
		}
		return latchClass{}, "", false
	}
	runFlow(&flowConfig{
		pass: pass,
		acquire: func(call *ast.CallExpr, lhs []ast.Expr, live []*resource) *resource {
			cls, key, ok := latchCall(call, "Lock", "RLock")
			if !ok {
				return nil
			}
			for _, held := range live {
				if held.level >= cls.level {
					pass.Reportf(call.Pos(), "latch-order",
						"acquiring %s latch (level %d) while holding %s (level %d, line %d) inverts the latch hierarchy",
						cls.label, cls.level, held.what, held.level, pass.Position(held.pos).Line)
				}
			}
			return &resource{
				key:   key,
				pos:   call.Pos(),
				what:  fmt.Sprintf("%s latch %s", cls.label, key),
				level: cls.level,
			}
		},
		releaseKey: func(call *ast.CallExpr) string {
			_, key, ok := latchCall(call, "Unlock", "RUnlock")
			if !ok {
				return ""
			}
			return key
		},
		onCall: func(call *ast.CallExpr, live []*resource) {
			top := live[len(live)-1]
			if recv := methodCall(call, "Sync"); recv != nil {
				pass.Reportf(call.Pos(), "latch-across-fsync",
					"%s (line %d) is held across %s.Sync — an fsync under a latch stalls every contender for the disk",
					top.what, pass.Position(top.pos).Line, types.ExprString(recv))
				return
			}
			if isFuncValueCall(pass, call) {
				pass.Reportf(call.Pos(), "latch-across-callback",
					"%s (line %d) is held across a call to an opaque function value — callbacks must not run under engine latches",
					top.what, pass.Position(top.pos).Line)
			}
		},
		onChan: func(pos token.Pos, op string, live []*resource) {
			top := live[len(live)-1]
			pass.Reportf(pos, "latch-across-chan",
				"%s (line %d) is held across a %s — a blocked channel op under a latch can deadlock the engine",
				top.what, pass.Position(top.pos).Line, op)
		},
		deferKeepsHeld: true,
		reportLeaks:    true,
		leakCode:       "latch-leak",
	})
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/adm-project/adm/internal/lint"
)

// An Analyzer is one invariant checker. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the suite can migrate to the real
// framework if the dependency ever becomes available.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //admvet:allow directives.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// All returns the full admvet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Pinpair, Batchrelease, Latchorder, Poisoncheck, Morselguard}
}

// ByName resolves analyzer names (comma-splittable by the caller) to
// the suite subset; unknown names return nil.
func ByName(names []string) []*Analyzer {
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			return nil
		}
	}
	return out
}

// Pass carries one (analyzer, package) unit of work, exposing the
// package's syntax and type information and collecting diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]lint.Diagnostic
}

// Reportf records an error diagnostic at pos under the analyzer's
// name with a stable machine-readable code.
func (p *Pass) Reportf(pos token.Pos, code, format string, args ...any) {
	pp := p.Fset.Position(pos)
	*p.diags = append(*p.diags, lint.Errorf(pp.Filename, pp.Line, pp.Column, p.Analyzer.Name, code, format, args...))
}

// Position resolves a token position (for messages that reference a
// second source location).
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// RunAnalyzers applies the analyzers to every package, applies
// //admvet:allow directives, and returns the surviving diagnostics
// sorted. Unused or malformed directives are themselves diagnostics:
// an allow that no longer suppresses anything is dead weight that
// must be removed, so every exception in the tree stays load-bearing.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, pkg := range pkgs {
		dirs, dirDiags := collectDirectives(pkg)
		var raw []lint.Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			a.Run(pass)
		}
		out = append(out, applyDirectives(dirs, raw)...)
		out = append(out, dirDiags...)
		for _, d := range dirs {
			if !d.used {
				out = append(out, lint.Errorf(d.pos.Filename, d.pos.Line, d.pos.Column,
					"admvet", "unused-allow",
					"//admvet:allow %s directive suppresses nothing — remove it or restore the code it covered", d.analyzer))
			}
		}
	}
	lint.Sort(out)
	return out
}

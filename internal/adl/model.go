package adl

import (
	"fmt"
	"sort"
)

// Config is a flattened configuration: the base instances/bindings
// plus one mode's overlay. This is what Figure 4 shows for "docked"
// and Figure 5 contrasts between docked and wireless sessions.
type Config struct {
	Mode  string
	Insts map[string]InstDecl // by instance name
	Binds map[string]BindDecl // by require-endpoint key
}

// InstNames returns the configuration's instance names, sorted.
func (c *Config) InstNames() []string {
	out := make([]string, 0, len(c.Insts))
	for n := range c.Insts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BindList returns the configuration's bindings, sorted by key.
func (c *Config) BindList() []BindDecl {
	keys := make([]string, 0, len(c.Binds))
	for k := range c.Binds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]BindDecl, 0, len(keys))
	for _, k := range keys {
		out = append(out, c.Binds[k])
	}
	return out
}

// Validate performs the semantic checks the paper expects an ADL to
// give "so as to reason about" an architecture: instance types exist;
// binding endpoints exist with the right directions; service types
// match; no require port is bound twice within one configuration; and
// every require port of every configuration is bound (completeness).
func (m *Model) Validate() []error {
	var errs []error
	addErr := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("adl: "+format, args...))
	}

	checkInsts := func(where string, insts []InstDecl, seen map[string]bool) {
		for _, i := range insts {
			if seen[i.Name] {
				addErr("%s: duplicate instance %q", where, i.Name)
			}
			seen[i.Name] = true
			if _, ok := m.Types[i.Type]; !ok {
				addErr("%s: instance %q has unknown type %q", where, i.Name, i.Type)
			}
		}
	}

	baseSeen := map[string]bool{}
	checkInsts("base", m.Insts, baseSeen)

	modes := m.modeNames()
	if len(modes) == 0 {
		// Pure base model: validate base bindings as the only config.
		errs = append(errs, m.validateConfig("base", m.Insts, nil, m.Binds, nil)...)
		return errs
	}
	for _, mn := range modes {
		mode := m.Modes[mn]
		seen := map[string]bool{}
		for k := range baseSeen {
			seen[k] = true
		}
		checkInsts("mode "+mn, mode.Insts, seen)
		errs = append(errs, m.validateConfig("mode "+mn, m.Insts, mode.Insts, m.Binds, mode.Binds)...)
	}
	return errs
}

func (m *Model) validateConfig(where string, baseInsts, modeInsts []InstDecl, baseBinds, modeBinds []BindDecl) []error {
	var errs []error
	addErr := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("adl: %s: "+format, append([]any{where}, args...)...))
	}
	insts := map[string]InstDecl{}
	for _, i := range baseInsts {
		insts[i.Name] = i
	}
	for _, i := range modeInsts {
		insts[i.Name] = i
	}
	bound := map[string]bool{}
	all := append(append([]BindDecl{}, baseBinds...), modeBinds...)
	for _, b := range all {
		from, ok := insts[b.From]
		if !ok {
			addErr("binding %s: unknown instance %q", b, b.From)
			continue
		}
		to, ok := insts[b.To]
		if !ok {
			addErr("binding %s: unknown instance %q", b, b.To)
			continue
		}
		ft, ok := m.Types[from.Type]
		if !ok {
			continue // reported by instance check
		}
		tt, ok := m.Types[to.Type]
		if !ok {
			continue
		}
		fp, ok := ft.Port(b.FromPort)
		if !ok {
			addErr("binding %s: %q has no port %q", b, from.Type, b.FromPort)
			continue
		}
		tp, ok := tt.Port(b.ToPort)
		if !ok {
			addErr("binding %s: %q has no port %q", b, to.Type, b.ToPort)
			continue
		}
		if fp.Provided {
			addErr("binding %s: left endpoint must be a required port", b)
		}
		if !tp.Provided {
			addErr("binding %s: right endpoint must be a provided port", b)
		}
		if fp.Service != tp.Service {
			addErr("binding %s: service mismatch %q vs %q", b, fp.Service, tp.Service)
		}
		if bound[b.Key()] {
			addErr("require port %s bound more than once", b.Key())
		}
		bound[b.Key()] = true
	}
	// Completeness: every require port of every instance bound.
	names := make([]string, 0, len(insts))
	for n := range insts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		i := insts[n]
		t, ok := m.Types[i.Type]
		if !ok {
			continue
		}
		for _, p := range t.Ports {
			if !p.Provided && !bound[i.Name+"."+p.Name] {
				addErr("require port %s.%s (%s) is unbound", i.Name, p.Name, p.Service)
			}
		}
	}
	return errs
}

func (m *Model) modeNames() []string {
	out := append([]string(nil), m.modeOrder...)
	return out
}

// ModeNames lists declared modes in declaration order.
func (m *Model) ModeNames() []string { return m.modeNames() }

// ConfigFor flattens the base configuration plus the named mode
// ("" = base only). Mode bindings override base bindings on the same
// require endpoint.
func (m *Model) ConfigFor(mode string) (*Config, error) {
	c := &Config{Mode: mode, Insts: map[string]InstDecl{}, Binds: map[string]BindDecl{}}
	for _, i := range m.Insts {
		c.Insts[i.Name] = i
	}
	for _, b := range m.Binds {
		c.Binds[b.Key()] = b
	}
	if mode != "" {
		mo, ok := m.Modes[mode]
		if !ok {
			return nil, fmt.Errorf("adl: unknown mode %q", mode)
		}
		for _, i := range mo.Insts {
			c.Insts[i.Name] = i
		}
		for _, b := range mo.Binds {
			c.Binds[b.Key()] = b
		}
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// Reconfiguration plans (Figure 5: docked → wireless switchover).

// Plan is the ordered reconfiguration recipe the Adaptivity Manager
// executes transactionally: quiesce the components whose wiring
// changes, remove old wires and instances, add new ones, resume.
type Plan struct {
	From, To string
	// Quiesce lists instances whose bindings change (either side) and
	// which survive the switch.
	Quiesce []string
	// Unbind lists wires present in From but not in To.
	Unbind []BindDecl
	// Stop lists instances present only in From.
	Stop []string
	// Start lists instances present only in To.
	Start []InstDecl
	// Bind lists wires present in To but not in From.
	Bind []BindDecl
	// Resume mirrors Quiesce.
	Resume []string
}

// Empty reports whether the plan changes nothing.
func (p *Plan) Empty() bool {
	return len(p.Unbind) == 0 && len(p.Stop) == 0 && len(p.Start) == 0 && len(p.Bind) == 0
}

// Steps renders the plan as ordered human-readable steps.
func (p *Plan) Steps() []string {
	var out []string
	for _, n := range p.Quiesce {
		out = append(out, "quiesce "+n)
	}
	for _, b := range p.Unbind {
		out = append(out, "unbind "+b.Key())
	}
	for _, n := range p.Stop {
		out = append(out, "stop "+n)
	}
	for _, i := range p.Start {
		out = append(out, "start "+i.Name+":"+i.Type)
	}
	for _, b := range p.Bind {
		out = append(out, "bind "+b.String())
	}
	for _, n := range p.Resume {
		out = append(out, "resume "+n)
	}
	return out
}

// Diff computes the reconfiguration plan that takes the model from
// one mode's configuration to another's. This is exactly the
// docked→wireless switchover of Figure 5: "the relevant device driver
// components will be swapped out and the wireless network driver
// activated ... the wireless optimisor must activate and amend the
// query plan accordingly".
func (m *Model) Diff(fromMode, toMode string) (*Plan, error) {
	from, err := m.ConfigFor(fromMode)
	if err != nil {
		return nil, err
	}
	to, err := m.ConfigFor(toMode)
	if err != nil {
		return nil, err
	}
	p := &Plan{From: fromMode, To: toMode}

	// Instances.
	for _, n := range from.InstNames() {
		if _, ok := to.Insts[n]; !ok {
			p.Stop = append(p.Stop, n)
		}
	}
	for _, n := range to.InstNames() {
		if _, ok := from.Insts[n]; !ok {
			p.Start = append(p.Start, to.Insts[n])
		}
	}

	// Bindings: compare by endpoint key and full wire.
	touched := map[string]bool{}
	for _, b := range from.BindList() {
		nb, ok := to.Binds[b.Key()]
		if !ok || !nb.SameWire(b) {
			p.Unbind = append(p.Unbind, b)
			touched[b.From] = true
			touched[b.To] = true
		}
	}
	for _, b := range to.BindList() {
		ob, ok := from.Binds[b.Key()]
		if !ok || !ob.SameWire(b) {
			p.Bind = append(p.Bind, b)
			touched[b.From] = true
			touched[b.To] = true
		}
	}

	// Quiesce: touched instances that exist in both configurations.
	stopSet := map[string]bool{}
	for _, n := range p.Stop {
		stopSet[n] = true
	}
	startSet := map[string]bool{}
	for _, i := range p.Start {
		startSet[i.Name] = true
	}
	var quiesce []string
	for n := range touched {
		if !stopSet[n] && !startSet[n] {
			if _, ok := from.Insts[n]; ok {
				quiesce = append(quiesce, n)
			}
		}
	}
	sort.Strings(quiesce)
	p.Quiesce = quiesce
	p.Resume = append([]string(nil), quiesce...)
	return p, nil
}

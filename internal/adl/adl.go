// Package adl implements a Darwin-style architecture description
// language (Magee et al., cited as [22] by the paper). "An ADL can
// give a global view of the system and when augmented with
// constraints, the validity of change (the reconfiguration of
// components) can potentially be evaluated at runtime" (§3).
//
// The textual grammar corresponds to the graphical form of Figures 4
// and 5: component types declare provided (filled circle) and
// required (empty circle) services; instances and bindings describe a
// configuration; `when <mode>` blocks overlay mode-specific instances
// and bindings (docked vs wireless), and diffing two modes yields the
// unbind/rebind plan the Adaptivity Manager executes.
//
// Grammar:
//
//	model    = { decl }
//	decl     = "component" NAME "{" { port } "}"
//	         | "inst" NAME ":" NAME ";"
//	         | "bind" ref "--" ref ";"
//	         | "when" NAME "{" { inst | bind } "}"
//	port     = ("provide"|"require") NAME ":" NAME ";"
//	ref      = NAME "." NAME
//
// Comments run from "//" to end of line.
package adl

import (
	"fmt"
	"strings"
	"unicode"
)

// PortDecl is one service endpoint on a component type.
type PortDecl struct {
	Name     string
	Service  string
	Provided bool // true = filled circle, false = empty circle
	// Line is the 1-based source line of the declaration (0 for
	// programmatically built models).
	Line int
}

func (p PortDecl) String() string {
	kw := "require"
	if p.Provided {
		kw = "provide"
	}
	return fmt.Sprintf("%s %s : %s;", kw, p.Name, p.Service)
}

// ComponentType declares a reusable component with its ports.
type ComponentType struct {
	Name  string
	Ports []PortDecl
	// Line is the 1-based source line of the declaration.
	Line int
}

// Port finds a port by name.
func (t *ComponentType) Port(name string) (PortDecl, bool) {
	for _, p := range t.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return PortDecl{}, false
}

// InstDecl instantiates a component type under a local name.
type InstDecl struct {
	Name string
	Type string
	// Line is the 1-based source line of the declaration.
	Line int
}

func (i InstDecl) String() string { return fmt.Sprintf("inst %s : %s;", i.Name, i.Type) }

// BindDecl wires From.FromPort (required) to To.ToPort (provided).
type BindDecl struct {
	From, FromPort string
	To, ToPort     string
	// Line is the 1-based source line of the declaration. It is
	// ignored by SameWire, which is what configuration diffing uses.
	Line int
}

func (b BindDecl) String() string {
	return fmt.Sprintf("bind %s.%s -- %s.%s;", b.From, b.FromPort, b.To, b.ToPort)
}

// Key identifies the bound require-endpoint (a require port may carry
// at most one wire in any configuration).
func (b BindDecl) Key() string { return b.From + "." + b.FromPort }

// SameWire reports whether two bindings connect the same endpoints,
// ignoring source position.
func (b BindDecl) SameWire(o BindDecl) bool {
	return b.From == o.From && b.FromPort == o.FromPort && b.To == o.To && b.ToPort == o.ToPort
}

// Mode is a `when` overlay: extra instances and bindings active only
// in that mode.
type Mode struct {
	Name  string
	Insts []InstDecl
	Binds []BindDecl
	// Line is the 1-based source line of the `when` header.
	Line int
}

// Model is a parsed ADL compilation unit.
type Model struct {
	Types map[string]*ComponentType
	// Insts/Binds are the base (always-active) configuration.
	Insts []InstDecl
	Binds []BindDecl
	Modes map[string]*Mode
	// order preserves declaration order for rendering.
	typeOrder []string
	modeOrder []string
}

// ParseError reports a syntax or semantic error with line information.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("adl: line %d: %s", e.Line, e.Msg)
}

// ---------------------------------------------------------------------------
// Lexer.

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tLBrace
	tRBrace
	tColon
	tSemi
	tDot
	tWire // --
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tRBrace, "}", line})
			i++
		case c == ':':
			toks = append(toks, token{tColon, ":", line})
			i++
		case c == ';':
			toks = append(toks, token{tSemi, ";", line})
			i++
		case c == '.':
			toks = append(toks, token{tDot, ".", line})
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			toks = append(toks, token{tWire, "--", line})
			i += 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '-') {
				// a "--" wire must not be swallowed by an identifier
				if src[j] == '-' && j+1 < len(src) && src[j+1] == '-' {
					break
				}
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], line})
			i = j
		default:
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

// ---------------------------------------------------------------------------
// Parser.

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return token{}, &ParseError{Line: t.line, Msg: fmt.Sprintf("expected %s, got %q", what, t.text)}
	}
	return p.next(), nil
}

func (p *parser) ident(what string) (token, error) { return p.expect(tIdent, what) }

// Parse compiles ADL source into a Model (syntax only; call Validate
// for semantic checks).
func Parse(src string) (*Model, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m := &Model{Types: map[string]*ComponentType{}, Modes: map[string]*Mode{}}
	for p.peek().kind != tEOF {
		t, err := p.ident("declaration keyword")
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "component":
			if err := p.componentDecl(m); err != nil {
				return nil, err
			}
		case "inst":
			d, err := p.instDecl()
			if err != nil {
				return nil, err
			}
			m.Insts = append(m.Insts, d)
		case "bind":
			d, err := p.bindDecl()
			if err != nil {
				return nil, err
			}
			m.Binds = append(m.Binds, d)
		case "when":
			if err := p.whenDecl(m); err != nil {
				return nil, err
			}
		default:
			return nil, &ParseError{Line: t.line, Msg: fmt.Sprintf("unknown declaration %q", t.text)}
		}
	}
	return m, nil
}

// MustParse panics on error; for fixtures.
func MustParse(src string) *Model {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

func (p *parser) componentDecl(m *Model) error {
	name, err := p.ident("component name")
	if err != nil {
		return err
	}
	if _, dup := m.Types[name.text]; dup {
		return &ParseError{Line: name.line, Msg: fmt.Sprintf("duplicate component type %q", name.text)}
	}
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return err
	}
	ct := &ComponentType{Name: name.text, Line: name.line}
	for p.peek().kind != tRBrace {
		kw, err := p.ident("provide/require")
		if err != nil {
			return err
		}
		if kw.text != "provide" && kw.text != "require" {
			return &ParseError{Line: kw.line, Msg: fmt.Sprintf("expected provide/require, got %q", kw.text)}
		}
		pn, err := p.ident("port name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tColon, "':'"); err != nil {
			return err
		}
		svc, err := p.ident("service name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tSemi, "';'"); err != nil {
			return err
		}
		if _, dup := ct.Port(pn.text); dup {
			return &ParseError{Line: pn.line, Msg: fmt.Sprintf("duplicate port %q on %q", pn.text, ct.Name)}
		}
		ct.Ports = append(ct.Ports, PortDecl{Name: pn.text, Service: svc.text, Provided: kw.text == "provide", Line: pn.line})
	}
	p.next() // }
	m.Types[ct.Name] = ct
	m.typeOrder = append(m.typeOrder, ct.Name)
	return nil
}

func (p *parser) instDecl() (InstDecl, error) {
	name, err := p.ident("instance name")
	if err != nil {
		return InstDecl{}, err
	}
	if _, err := p.expect(tColon, "':'"); err != nil {
		return InstDecl{}, err
	}
	typ, err := p.ident("type name")
	if err != nil {
		return InstDecl{}, err
	}
	if _, err := p.expect(tSemi, "';'"); err != nil {
		return InstDecl{}, err
	}
	return InstDecl{Name: name.text, Type: typ.text, Line: name.line}, nil
}

func (p *parser) ref() (string, string, error) {
	comp, err := p.ident("instance name")
	if err != nil {
		return "", "", err
	}
	if _, err := p.expect(tDot, "'.'"); err != nil {
		return "", "", err
	}
	port, err := p.ident("port name")
	if err != nil {
		return "", "", err
	}
	return comp.text, port.text, nil
}

func (p *parser) bindDecl() (BindDecl, error) {
	line := p.peek().line
	fc, fp, err := p.ref()
	if err != nil {
		return BindDecl{}, err
	}
	if _, err := p.expect(tWire, "'--'"); err != nil {
		return BindDecl{}, err
	}
	tc, tp, err := p.ref()
	if err != nil {
		return BindDecl{}, err
	}
	if _, err := p.expect(tSemi, "';'"); err != nil {
		return BindDecl{}, err
	}
	return BindDecl{From: fc, FromPort: fp, To: tc, ToPort: tp, Line: line}, nil
}

func (p *parser) whenDecl(m *Model) error {
	name, err := p.ident("mode name")
	if err != nil {
		return err
	}
	if _, dup := m.Modes[name.text]; dup {
		return &ParseError{Line: name.line, Msg: fmt.Sprintf("duplicate mode %q", name.text)}
	}
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return err
	}
	mode := &Mode{Name: name.text, Line: name.line}
	for p.peek().kind != tRBrace {
		kw, err := p.ident("inst/bind")
		if err != nil {
			return err
		}
		switch kw.text {
		case "inst":
			d, err := p.instDecl()
			if err != nil {
				return err
			}
			mode.Insts = append(mode.Insts, d)
		case "bind":
			d, err := p.bindDecl()
			if err != nil {
				return err
			}
			mode.Binds = append(mode.Binds, d)
		default:
			return &ParseError{Line: kw.line, Msg: fmt.Sprintf("only inst/bind allowed in when-block, got %q", kw.text)}
		}
	}
	p.next() // }
	m.Modes[name.text] = mode
	m.modeOrder = append(m.modeOrder, name.text)
	return nil
}

// Render emits the model back as canonical ADL text.
func (m *Model) Render() string {
	var b strings.Builder
	for _, tn := range m.typeOrder {
		t := m.Types[tn]
		fmt.Fprintf(&b, "component %s {\n", t.Name)
		for _, p := range t.Ports {
			fmt.Fprintf(&b, "  %s\n", p)
		}
		b.WriteString("}\n")
	}
	for _, i := range m.Insts {
		fmt.Fprintln(&b, i)
	}
	for _, bd := range m.Binds {
		fmt.Fprintln(&b, bd)
	}
	for _, mn := range m.modeOrder {
		mode := m.Modes[mn]
		fmt.Fprintf(&b, "when %s {\n", mode.Name)
		for _, i := range mode.Insts {
			fmt.Fprintf(&b, "  %s\n", i)
		}
		for _, bd := range mode.Binds {
			fmt.Fprintf(&b, "  %s\n", bd)
		}
		b.WriteString("}\n")
	}
	return b.String()
}

package adl

// Figure4 is the ADL rendering of the paper's Figure 4 ("Darwin
// description of mobile CBMS") together with the Figure 5 switchover:
// the docked session binds the standard optimiser and the Ethernet
// driver; the wireless session swaps in the wireless optimiser and
// the wireless device driver. The query manager, session manager and
// stream source survive the switch and are only quiesced across it.
const Figure4 = `
// Figure 4: component-based management system within the Laptop.
component QueryMgr {
  provide query : query;
  require plan  : optimise;
  require pages : getpage;
}
component SessionMgr {
  provide stats : monitor;
  require net   : net;
}
component StreamSource {
  provide pages : getpage;
  require net   : net;
}
component Optimiser {          // docked: assumes stable high bandwidth
  provide plan  : optimise;
  require stats : monitor;
}
component WirelessOptimiser {  // amends plans for variable bandwidth
  provide plan  : optimise;
  require stats : monitor;
}
component EthernetDriver {
  provide net : net;
}
component WirelessDriver {
  provide net : net;
}

inst qm  : QueryMgr;
inst sm  : SessionMgr;
inst src : StreamSource;
bind qm.pages -- src.pages;

when docked {
  inst opt : Optimiser;
  inst eth : EthernetDriver;
  bind qm.plan   -- opt.plan;
  bind opt.stats -- sm.stats;
  bind sm.net    -- eth.net;
  bind src.net   -- eth.net;
}

when wireless {
  inst wopt : WirelessOptimiser;
  inst wifi : WirelessDriver;
  bind qm.plan    -- wopt.plan;
  bind wopt.stats -- sm.stats;
  bind sm.net     -- wifi.net;
  bind src.net    -- wifi.net;
}
`

// Figure7 is the ADL rendering of the paper's Figure 7 ("Overview of
// the Patia Webserver architecture"): requests enter through a
// dispatcher, service agents find atoms in the replicated store and
// serve them, with the session monitor and adaptivity manager wired
// in as first-class components. The `overloaded` mode is the flash-
// crowd configuration after constraint 455 migrates the agent.
const Figure7 = `
// Figure 7: the Patia webserver as components.
component Dispatcher {
  provide http   : http-in;
  require serve  : atom-serve;
}
component ServiceAgent {
  provide serve  : atom-serve;
  require atoms  : atom-store;
  require state  : state-mgr;
}
component AtomStore {
  provide atoms : atom-store;
}
component SessionMonitor {
  provide stats   : monitor;
  require metrics : raw-metrics;
}
component NodeMonitor {
  provide metrics : raw-metrics;
}
component AdaptivityMgr {
  provide state : state-mgr;
  require stats : monitor;
}

inst disp  : Dispatcher;
inst sm    : SessionMonitor;
inst nm    : NodeMonitor;
inst am    : AdaptivityMgr;
bind sm.metrics -- nm.metrics;
bind am.stats   -- sm.stats;

when normal {
  inst agent1  : ServiceAgent;
  inst store1  : AtomStore;
  bind disp.serve   -- agent1.serve;
  bind agent1.atoms -- store1.atoms;
  bind agent1.state -- am.state;
}

when overloaded {
  inst agent2  : ServiceAgent;  // migrated replica of the agent
  inst store2  : AtomStore;
  bind disp.serve   -- agent2.serve;
  bind agent2.atoms -- store2.atoms;
  bind agent2.state -- am.state;
}
`

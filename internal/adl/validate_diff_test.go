package adl

import (
	"strings"
	"testing"
)

// Edge cases surfaced by the admlint graph checks: Validate and Diff
// must agree with the lint pass on what a configuration means.

func TestValidateDuplicateInstanceAcrossModes(t *testing.T) {
	// The same instance name in two *different* modes is legal: each
	// mode is a separate configuration, so the names never coexist.
	m := MustParse(`
component A { provide y : s; }
component B { require x : s; }
inst b : B;
when m1 { inst a : A; bind b.x -- a.y; }
when m2 { inst a : A; bind b.x -- a.y; }
`)
	if errs := m.Validate(); len(errs) != 0 {
		t.Fatalf("per-mode reuse of a name must validate: %v", errs)
	}

	// The same name in a mode *and* the base is a duplicate: the mode
	// overlays the base, so both would coexist.
	m2 := MustParse(`
component A { provide y : s; }
component B { require x : s; }
inst a : A;
inst b : B;
bind b.x -- a.y;
when m { inst a : A; }
`)
	errs := m2.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "mode m") && strings.Contains(e.Error(), `duplicate instance "a"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("mode-vs-base duplicate not reported: %v", errs)
	}
}

func TestValidateBindToUndeclaredPort(t *testing.T) {
	m := MustParse(`
component A { require x : s; }
component B { provide y : s; }
inst a : A;
inst b : B;
bind a.x -- b.y;
bind a.ghost -- b.y;
`)
	errs := m.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), `"A" has no port "ghost"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("undeclared port not reported: %v", errs)
	}
}

func TestDiffIdenticalModesEmptyPlan(t *testing.T) {
	// Two modes that make the same change relative to base differ by
	// nothing from each other: the switchover plan must be empty, so
	// the Adaptivity Manager quiesces nothing.
	m := MustParse(`
component A { provide y : s; }
component B { require x : s; }
inst b : B;
when m1 { inst a : A; bind b.x -- a.y; }
when m2 { inst a : A; bind b.x -- a.y; }
`)
	p, err := m.Diff("m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatalf("identical modes must diff to an empty plan, got steps %v", p.Steps())
	}
	if len(p.Quiesce) != 0 || len(p.Resume) != 0 {
		t.Fatalf("empty plan must quiesce nothing, got %+v", p)
	}
}

func TestDiffIgnoresSourceLines(t *testing.T) {
	// BindDecls now carry their source line; Diff must compare wires
	// semantically (SameWire), not structurally. A mode that restates
	// a base wire replaces it in ConfigFor with a decl at a different
	// source line — struct equality would have unbound and rebound it.
	m := MustParse(`
component A { provide y : s; }
component B { require x : s; }
inst a : A;
inst b : B;
bind b.x -- a.y;
when restated {
  bind b.x -- a.y;
}
`)
	p, err := m.Diff("", "restated")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatalf("re-stating a wire at a new line must be a no-op, got %v", p.Steps())
	}
}

func TestSameWireIgnoresLine(t *testing.T) {
	a := BindDecl{From: "b", FromPort: "x", To: "a", ToPort: "y", Line: 3}
	b := BindDecl{From: "b", FromPort: "x", To: "a", ToPort: "y", Line: 9}
	if !a.SameWire(b) {
		t.Fatal("SameWire must ignore source position")
	}
	c := BindDecl{From: "b", FromPort: "x", To: "a", ToPort: "z", Line: 3}
	if a.SameWire(c) {
		t.Fatal("different endpoints must not be the same wire")
	}
}

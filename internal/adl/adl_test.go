package adl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFigure4(t *testing.T) {
	m, err := Parse(Figure4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Types) != 7 {
		t.Fatalf("types = %d, want 7", len(m.Types))
	}
	if len(m.Insts) != 3 || len(m.Binds) != 1 {
		t.Fatalf("base: %d insts %d binds", len(m.Insts), len(m.Binds))
	}
	if len(m.Modes) != 2 {
		t.Fatalf("modes = %d", len(m.Modes))
	}
	qm := m.Types["QueryMgr"]
	p, ok := qm.Port("plan")
	if !ok || p.Provided || p.Service != "optimise" {
		t.Fatalf("QueryMgr.plan = %+v %v", p, ok)
	}
	q, _ := qm.Port("query")
	if !q.Provided {
		t.Fatal("QueryMgr.query must be provided")
	}
}

func TestFigure4Validates(t *testing.T) {
	m := MustParse(Figure4)
	if errs := m.Validate(); len(errs) != 0 {
		t.Fatalf("figure 4 invalid: %v", errs)
	}
}

func TestValidateCatchesUnknownType(t *testing.T) {
	m := MustParse(`inst a : Nothing;`)
	errs := m.Validate()
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "unknown type") {
		t.Fatalf("errs = %v", errs)
	}
}

func TestValidateCatchesUnboundRequire(t *testing.T) {
	m := MustParse(`
component A { require x : s; }
inst a : A;
`)
	errs := m.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "a.x") && strings.Contains(e.Error(), "unbound") {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs = %v", errs)
	}
}

func TestValidateCatchesDirectionErrors(t *testing.T) {
	m := MustParse(`
component A { provide p : s; }
component B { provide q : s; }
inst a : A;
inst b : B;
bind a.p -- b.q;
`)
	errs := m.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "left endpoint must be a required port") {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs = %v", errs)
	}
}

func TestValidateCatchesServiceMismatch(t *testing.T) {
	m := MustParse(`
component A { require x : alpha; }
component B { provide y : beta; }
inst a : A;
inst b : B;
bind a.x -- b.y;
`)
	errs := m.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "service mismatch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs = %v", errs)
	}
}

func TestValidateCatchesDoubleBinding(t *testing.T) {
	m := MustParse(`
component A { require x : s; }
component B { provide y : s; }
inst a : A;
inst b : B;
inst b2 : B;
bind a.x -- b.y;
bind a.x -- b2.y;
`)
	errs := m.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "bound more than once") {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs = %v", errs)
	}
}

func TestValidateCatchesUnknownBindInstance(t *testing.T) {
	m := MustParse(`
component A { require x : s; }
inst a : A;
bind a.x -- ghost.y;
`)
	errs := m.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), `unknown instance "ghost"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs = %v", errs)
	}
}

func TestValidateDuplicateInstanceAcrossModeAndBase(t *testing.T) {
	m := MustParse(`
component A { provide p : s; }
inst a : A;
when w { inst a : A; }
`)
	errs := m.Validate()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "duplicate instance") {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs = %v", errs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`component {`,
		`component A { provide ; }`,
		`component A { banana x : s; }`,
		`inst a A;`,
		`bind a.x - b.y;`,
		`when w { component A {} }`,
		`frobnicate;`,
		`component A { provide p : s; provide p : s; }`,
		`component A {} component A {}`,
		`when w {} when w {}`,
		"inst a : A; @",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestConfigFor(t *testing.T) {
	m := MustParse(Figure4)
	docked, err := m.ConfigFor("docked")
	if err != nil {
		t.Fatal(err)
	}
	if len(docked.Insts) != 5 { // qm, sm, src + opt, eth
		t.Fatalf("docked insts = %v", docked.InstNames())
	}
	if len(docked.Binds) != 5 { // qm.pages + 4 mode binds
		t.Fatalf("docked binds = %v", docked.BindList())
	}
	if _, err := m.ConfigFor("flying"); err == nil {
		t.Fatal("unknown mode must error")
	}
	base, err := m.ConfigFor("")
	if err != nil || len(base.Insts) != 3 {
		t.Fatalf("base config: %v %v", base, err)
	}
}

func TestDiffFigure5Switchover(t *testing.T) {
	m := MustParse(Figure4)
	plan, err := m.Diff("docked", "wireless")
	if err != nil {
		t.Fatal(err)
	}
	has := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	if !has(plan.Stop, "opt") || !has(plan.Stop, "eth") {
		t.Errorf("stop = %v, want opt+eth", plan.Stop)
	}
	startNames := []string{}
	for _, i := range plan.Start {
		startNames = append(startNames, i.Name)
	}
	if !has(startNames, "wopt") || !has(startNames, "wifi") {
		t.Errorf("start = %v, want wopt+wifi", startNames)
	}
	// Survivors whose wiring changes get quiesced: qm, sm, src.
	for _, n := range []string{"qm", "sm", "src"} {
		if !has(plan.Quiesce, n) {
			t.Errorf("quiesce = %v, missing %s", plan.Quiesce, n)
		}
	}
	// qm.pages -- src.pages is unchanged and must NOT be unbound.
	for _, b := range plan.Unbind {
		if b.Key() == "qm.pages" {
			t.Error("stable binding qm.pages must survive the switch")
		}
	}
	if len(plan.Unbind) != 4 || len(plan.Bind) != 4 {
		t.Errorf("unbind=%d bind=%d, want 4/4", len(plan.Unbind), len(plan.Bind))
	}
	if plan.Empty() {
		t.Error("plan must not be empty")
	}
	if len(plan.Steps()) == 0 {
		t.Error("no steps")
	}
}

func TestDiffIdentityIsEmpty(t *testing.T) {
	m := MustParse(Figure4)
	plan, err := m.Diff("docked", "docked")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Empty() {
		t.Fatalf("self-diff must be empty: %v", plan.Steps())
	}
}

func TestDiffUnknownMode(t *testing.T) {
	m := MustParse(Figure4)
	if _, err := m.Diff("docked", "flying"); err == nil {
		t.Fatal("want error")
	}
	if _, err := m.Diff("flying", "docked"); err == nil {
		t.Fatal("want error")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	m1 := MustParse(Figure4)
	text := m1.Render()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("rendered text does not reparse: %v\n%s", err, text)
	}
	if m2.Render() != text {
		t.Fatal("render is not a fixed point")
	}
	if len(m2.Types) != len(m1.Types) || len(m2.Modes) != len(m1.Modes) {
		t.Fatal("round trip lost declarations")
	}
}

// Property: for any pair of modes, applying Diff(from,to) to the
// from-config reproduces exactly the to-config (instances and wires).
func TestDiffAppliesExactlyProperty(t *testing.T) {
	m := MustParse(Figure4)
	modes := []string{"", "docked", "wireless"}
	f := func(a, b uint8) bool {
		from := modes[int(a)%len(modes)]
		to := modes[int(b)%len(modes)]
		plan, err := m.Diff(from, to)
		if err != nil {
			return false
		}
		cfg, _ := m.ConfigFor(from)
		want, _ := m.ConfigFor(to)
		// apply plan
		insts := map[string]InstDecl{}
		for k, v := range cfg.Insts {
			insts[k] = v
		}
		binds := map[string]BindDecl{}
		for k, v := range cfg.Binds {
			binds[k] = v
		}
		for _, bd := range plan.Unbind {
			delete(binds, bd.Key())
		}
		for _, n := range plan.Stop {
			delete(insts, n)
		}
		for _, i := range plan.Start {
			insts[i.Name] = i
		}
		for _, bd := range plan.Bind {
			binds[bd.Key()] = bd
		}
		if len(insts) != len(want.Insts) || len(binds) != len(want.Binds) {
			return false
		}
		for k, v := range want.Insts {
			if insts[k] != v {
				return false
			}
		}
		for k, v := range want.Binds {
			if binds[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLexIdentWithHyphenNotWire(t *testing.T) {
	m, err := Parse(`
component A { require x-y : s-t; }
component B { provide p : s-t; }
inst a : A;
inst b : B;
bind a.x-y -- b.p;
`)
	if err != nil {
		t.Fatal(err)
	}
	if errs := m.Validate(); len(errs) != 0 {
		t.Fatalf("hyphenated idents: %v", errs)
	}
}

func TestFigure7ValidatesAndSwitches(t *testing.T) {
	m, err := Parse(Figure7)
	if err != nil {
		t.Fatal(err)
	}
	if errs := m.Validate(); len(errs) != 0 {
		t.Fatalf("figure 7 invalid: %v", errs)
	}
	plan, err := m.Diff("normal", "overloaded")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() {
		t.Fatal("flash-crowd switch is empty")
	}
	stops := map[string]bool{}
	for _, n := range plan.Stop {
		stops[n] = true
	}
	if !stops["agent1"] || !stops["store1"] {
		t.Fatalf("stop = %v", plan.Stop)
	}
	// The dispatcher survives and is quiesced across the migration.
	found := false
	for _, q := range plan.Quiesce {
		if q == "disp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("quiesce = %v", plan.Quiesce)
	}
}

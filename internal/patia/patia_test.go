package patia

import (
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/trace"
)

func newTwoNodeSystem(t *testing.T) *System {
	t.Helper()
	sys := NewSystem([]string{"node1", "node2"}, monitor.NewRegistry(), trace.New(), nil)
	page := &Atom{ID: 123, Name: "Page1.html", Type: "html", Bytes: 40_000}
	sys.Nodes["node1"].Store.Put(page)
	sys.Nodes["node2"].Store.Put(page)
	if _, err := sys.DeployAgent("agent-123", "node1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WireFrontend("node1", "agent-123"); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestServeThroughFrontend(t *testing.T) {
	sys := newTwoNodeSystem(t)
	resp := sys.Serve("agent-123", Request{Client: "alice", AtomID: 123})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Node != "node1" || resp.Bytes != 40_000 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.LatencyMS <= 0 {
		t.Fatal("no latency computed")
	}
}

func TestServeMissingAtomAndAgent(t *testing.T) {
	sys := newTwoNodeSystem(t)
	if resp := sys.Serve("agent-123", Request{AtomID: 999}); resp.Err == nil {
		t.Fatal("missing atom must error")
	}
	if resp := sys.Serve("ghost", Request{AtomID: 123}); resp.Err == nil {
		t.Fatal("missing agent must error")
	}
}

func TestLatencyRisesWithUtil(t *testing.T) {
	sys := newTwoNodeSystem(t)
	lo := sys.Serve("agent-123", Request{Client: "a", AtomID: 123}).LatencyMS
	sys.Nodes["node1"].Device.SetLoad(390) // near capacity 400
	hi := sys.Serve("agent-123", Request{Client: "a", AtomID: 123}).LatencyMS
	if hi <= 5*lo {
		t.Fatalf("latency lo=%v hi=%v: want saturation blow-up", lo, hi)
	}
}

func TestAgentStateRoundTrip(t *testing.T) {
	st := &AgentState{Served: 42, Sessions: map[string]int{"alice": 7, "bob": 3}}
	b, err := st.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	st2 := &AgentState{Sessions: map[string]int{}}
	if err := st2.RestoreState(b); err != nil {
		t.Fatal(err)
	}
	if st2.Served != 42 || st2.Sessions["alice"] != 7 || st2.Sessions["bob"] != 3 {
		t.Fatalf("restored = %+v", st2)
	}
}

func TestMigrateAgentCarriesState(t *testing.T) {
	sys := newTwoNodeSystem(t)
	for i := 0; i < 5; i++ {
		if resp := sys.Serve("agent-123", Request{Client: "alice", AtomID: 123}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if err := sys.MigrateAgent("agent-123", "node2"); err != nil {
		t.Fatal(err)
	}
	node, _ := sys.AgentNode("agent-123")
	if node != "node2" {
		t.Fatalf("agent at %s", node)
	}
	// Processing state travelled: session continuity preserved.
	sysAgent := sys.agents["agent-123"]
	if sysAgent.State.Served != 5 || sysAgent.State.Sessions["alice"] != 5 {
		t.Fatalf("state after migration = %+v", sysAgent.State)
	}
	// Requests keep flowing on the new node.
	resp := sys.Serve("agent-123", Request{Client: "alice", AtomID: 123})
	if resp.Err != nil || resp.Node != "node2" {
		t.Fatalf("post-migration serve: %+v", resp)
	}
	if sysAgent.State.Served != 6 {
		t.Fatalf("served = %d", sysAgent.State.Served)
	}
	if sys.Switches() != 1 {
		t.Fatalf("switches = %d", sys.Switches())
	}
}

func TestMigrateErrors(t *testing.T) {
	sys := newTwoNodeSystem(t)
	if err := sys.MigrateAgent("ghost", "node2"); err == nil {
		t.Fatal("missing agent")
	}
	if err := sys.MigrateAgent("agent-123", "mars"); err == nil {
		t.Fatal("missing node")
	}
}

func TestChooseVersionBandedRule(t *testing.T) {
	reg := monitor.NewRegistry()
	sys := NewSystem([]string{"node1", "node2", "node3"}, reg, trace.New(), nil)
	video := &Atom{
		ID: 153, Name: "video.ram", Type: "video", Bytes: 4_000_000,
		Constraints: Table2VideoRules(),
		Versions:    map[string]int{"videohalf": 2_000_000, "videosmall": 500_000},
	}
	for _, n := range []string{"node1", "node2", "node3"} {
		sys.Nodes[n].Store.Put(video)
	}
	sys.PublishVitals(0)

	// In band (30..100 Kbps): BEST picks a videohalf target.
	reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricBandwidth}, Value: 50})
	v, bytes := sys.chooseVersion(video, "node1")
	if v != "videohalf" || bytes != 2_000_000 {
		t.Fatalf("in-band version = %s %d", v, bytes)
	}
	// Below band: else branch picks videosmall.
	reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricBandwidth}, Value: 10})
	v, bytes = sys.chooseVersion(video, "node1")
	if v != "videosmall" || bytes != 500_000 {
		t.Fatalf("below-band version = %s %d", v, bytes)
	}
}

func TestFlashCrowdAdaptiveBeatsStatic(t *testing.T) {
	static, err := RunFlashCrowd(DefaultCrowdConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunFlashCrowd(DefaultCrowdConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if static.Switches != 0 {
		t.Fatalf("static switched %d times", static.Switches)
	}
	if adaptive.Switches < 1 {
		t.Fatal("adaptive never switched")
	}
	// The crowd (320 RPS + 150 background > 400 capacity) saturates
	// node1 in the static run; the adaptive run escapes to node2.
	if static.SaturatedTicks == 0 {
		t.Fatal("static run never saturated — experiment miscalibrated")
	}
	if adaptive.SaturatedTicks >= static.SaturatedTicks {
		t.Fatalf("adaptive saturated %d ticks vs static %d",
			adaptive.SaturatedTicks, static.SaturatedTicks)
	}
	if adaptive.MeanLatencyMS >= static.MeanLatencyMS {
		t.Fatalf("adaptive latency %.2f >= static %.2f",
			adaptive.MeanLatencyMS, static.MeanLatencyMS)
	}
	// The switch took the agent to node2.
	last := adaptive.Intervals[len(adaptive.Intervals)-1]
	if last.Node != "node2" {
		t.Fatalf("final node = %s", last.Node)
	}
	if adaptive.Log.Count("violation") == 0 || adaptive.Log.Count("migrate") == 0 {
		t.Fatalf("trace = %s", adaptive.Log.Summary())
	}
}

func TestTable2RulesParseAndPrioritise(t *testing.T) {
	rs := Table2Rules()
	if rs.Len() != 2 {
		t.Fatalf("rules = %d", rs.Len())
	}
	// 455 (SWITCH) outranks 450 (BEST).
	rules := rs.Rules()
	if rules[0].ID != 455 || rules[1].ID != 450 {
		t.Fatalf("order = %v %v", rules[0].ID, rules[1].ID)
	}
	if !strings.Contains(rules[0].Rule.String(), "SWITCH") {
		t.Fatalf("rule = %s", rules[0].Rule)
	}
}

package patia

import (
	"errors"
	"testing"

	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/trace"
)

// pageSystem: three nodes; atoms 1-3 spread with replication:
//
//	atom 1 (text):    node1, node2
//	atom 2 (graphic): node2, node3
//	atom 3 (video):   node3, node1
func pageSystem(t *testing.T) (*System, PageSpec) {
	t.Helper()
	sys := NewSystem([]string{"node1", "node2", "node3"}, monitor.NewRegistry(), trace.New(), nil)
	atoms := []struct {
		a     *Atom
		nodes []string
	}{
		{&Atom{ID: 1, Name: "frame.txt", Type: "text", Bytes: 2_000}, []string{"node1", "node2"}},
		{&Atom{ID: 2, Name: "logo.png", Type: "graphic", Bytes: 30_000}, []string{"node2", "node3"}},
		{&Atom{ID: 3, Name: "clip.ram", Type: "video", Bytes: 900_000}, []string{"node3", "node1"}},
	}
	for _, e := range atoms {
		for _, n := range e.nodes {
			sys.Nodes[n].Store.Put(e.a)
		}
	}
	sys.PublishVitals(0)
	return sys, PageSpec{Name: "index.html", AtomIDs: []int{1, 2, 3}}
}

func TestNodesHolding(t *testing.T) {
	sys, _ := pageSystem(t)
	got := sys.NodesHolding(1)
	if len(got) != 2 || got[0] != "node1" || got[1] != "node2" {
		t.Fatalf("holders = %v", got)
	}
	if len(sys.NodesHolding(99)) != 0 {
		t.Fatal("phantom atom")
	}
	_ = sys.KillNode("node1")
	if got := sys.NodesHolding(1); len(got) != 1 || got[0] != "node2" {
		t.Fatalf("holders after kill = %v", got)
	}
}

func TestFetchPageParallelBeatsSequential(t *testing.T) {
	sys, page := pageSystem(t)
	resp, err := sys.FetchPage(page, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Atoms) != 3 {
		t.Fatalf("atoms = %d", len(resp.Atoms))
	}
	if resp.ParallelMS >= resp.SequentialMS {
		t.Fatalf("parallel %.2f >= sequential %.2f", resp.ParallelMS, resp.SequentialMS)
	}
	if resp.FailedOver != 0 {
		t.Fatalf("unexpected failover: %d", resp.FailedOver)
	}
}

func TestFetchPageSpreadsByLoad(t *testing.T) {
	sys, page := pageSystem(t)
	// node2 is slammed: atoms with a replica elsewhere must avoid it.
	sys.Nodes["node2"].Device.SetLoad(390)
	sys.PublishVitals(1)
	resp, err := sys.FetchPage(page, "alice")
	if err != nil {
		t.Fatal(err)
	}
	for _, af := range resp.Atoms {
		if af.Node == "node2" {
			t.Fatalf("atom %d served from the overloaded node", af.AtomID)
		}
	}
}

func TestFetchPageFailsOverOnNodeDeath(t *testing.T) {
	sys, page := pageSystem(t)
	if err := sys.KillNode("node3"); err != nil {
		t.Fatal(err)
	}
	resp, err := sys.FetchPage(page, "alice")
	if err != nil {
		t.Fatal(err)
	}
	for _, af := range resp.Atoms {
		if af.Node == "node3" {
			t.Fatalf("atom %d served from a dead node", af.AtomID)
		}
	}
	// atoms 2 and 3 each had node3 among replicas; both still served.
	if len(resp.Atoms) != 3 {
		t.Fatalf("atoms = %d", len(resp.Atoms))
	}
}

func TestFetchPageAllReplicasDead(t *testing.T) {
	sys, page := pageSystem(t)
	_ = sys.KillNode("node2")
	_ = sys.KillNode("node3")
	// atom 2 lived only on node2+node3.
	_, err := sys.FetchPage(page, "alice")
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("got %v", err)
	}
}

func TestKillNodeUnknown(t *testing.T) {
	sys, _ := pageSystem(t)
	if err := sys.KillNode("mars"); err == nil {
		t.Fatal("want error")
	}
}

func TestFetchPageStaleVitalsFallsBack(t *testing.T) {
	// A node dies after vitals were published: BEST may still prefer
	// it; pickReplica must detect the dead choice and fail over.
	sys, _ := pageSystem(t)
	// Make node3 clearly the best for atom 3 (its other replica node1
	// is loaded), publish vitals, then kill node3 WITHOUT
	// republishing.
	sys.Nodes["node1"].Device.SetLoad(390)
	sys.PublishVitals(1)
	sys.Nodes["node3"].Device.Kill()
	resp, err := sys.FetchPage(PageSpec{Name: "v", AtomIDs: []int{3}}, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Atoms[0].Node != "node1" {
		t.Fatalf("served from %s", resp.Atoms[0].Node)
	}
	if resp.FailedOver != 1 || !resp.Atoms[0].FailedOver {
		t.Fatalf("failover not recorded: %+v", resp)
	}
}

// Package patia implements the Patia adaptive webserver of §5.2
// (Figure 7, Table 2): web content decomposed into Atoms
// (`<a_id, name, type, <constraint>>`) replicated across nodes,
// served by migratable service-agent components, with Table 2's
// constraints driving replica selection (450: BEST), flash-crowd
// agent migration (455: SWITCH at processor-util > 90%) and
// bandwidth-banded version choice (595).
package patia

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/device"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/trace"
)

// Atom is the smallest web object that cannot be subdivided: "a video
// stream, graphic, a navigation button, a text frame etc."
type Atom struct {
	ID   int
	Name string
	Type string // html | graphic | video | text
	// Constraints are the atom's adaptability rules (Table 2 rows).
	Constraints *constraint.RuleSet
	// Bytes is the wire size of the primary version.
	Bytes int
	// Versions maps a version label (videohalf, videosmall, ...) to
	// its wire size; BEST/banded rules pick among them.
	Versions map[string]int
}

// Store is one node's atom inventory.
type Store struct {
	mu    sync.RWMutex
	node  string
	atoms map[int]*Atom
}

// NewStore builds an empty store for a node.
func NewStore(node string) *Store {
	return &Store{node: node, atoms: map[int]*Atom{}}
}

// Put registers an atom replica on this node.
func (s *Store) Put(a *Atom) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.atoms[a.ID] = a
}

// Get looks up an atom.
func (s *Store) Get(id int) (*Atom, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.atoms[id]
	return a, ok
}

// Has reports replica presence.
func (s *Store) Has(id int) bool {
	_, ok := s.Get(id)
	return ok
}

// ---------------------------------------------------------------------------
// Service agent.

// AgentState is the migratable processing state of a service agent —
// what the State Manager saves when "the whole service-agent is
// mobile".
type AgentState struct {
	mu       sync.Mutex
	Served   int
	Sessions map[string]int // client -> requests in session
}

// CaptureState implements component.Stateful.
func (st *AgentState) CaptureState() ([]byte, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var b []byte
	b = fmt.Appendf(b, "served=%d\n", st.Served)
	keys := make([]string, 0, len(st.Sessions))
	for k := range st.Sessions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b = fmt.Appendf(b, "session %s %d\n", k, st.Sessions[k])
	}
	return b, nil
}

// RestoreState implements component.Stateful.
func (st *AgentState) RestoreState(b []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.Sessions = map[string]int{}
	st.Served = 0
	for _, line := range strings.Split(string(b), "\n") {
		switch {
		case strings.HasPrefix(line, "served="):
			var served int
			if _, err := fmt.Sscanf(line, "served=%d", &served); err != nil {
				return fmt.Errorf("patia: corrupt agent state: %w", err)
			}
			st.Served = served
		case strings.HasPrefix(line, "session "):
			var client string
			var cnt int
			if _, err := fmt.Sscanf(line, "session %s %d", &client, &cnt); err != nil {
				return fmt.Errorf("patia: corrupt agent state: %w", err)
			}
			st.Sessions[client] = cnt
		}
	}
	return nil
}

// Agent is the service-agent component: it receives a request, "finds
// the appropriate Atom and serves it to the client".
type Agent struct {
	Name  string
	Node  string
	State *AgentState
	Comp  *component.Component
	store *Store
}

// NewAgent builds a service agent over a node's store.
func NewAgent(name, node string, store *Store) *Agent {
	st := &AgentState{Sessions: map[string]int{}}
	a := &Agent{Name: name, Node: node, State: st, store: store}
	a.Comp = component.New(name).WithStateful(st).
		Provide("serve", "http", func(req component.Request) (any, error) {
			id, _ := req.Args["atom"].(int)
			client, _ := req.Args["client"].(string)
			atom, ok := store.Get(id)
			if !ok {
				return nil, fmt.Errorf("patia: %s: atom %d not replicated on %s", name, id, node)
			}
			st.mu.Lock()
			st.Served++
			st.Sessions[client]++
			st.mu.Unlock()
			return atom, nil
		})
	return a
}

// ---------------------------------------------------------------------------
// The Patia system.

// Request is one client fetch.
type Request struct {
	Client string
	AtomID int
	AtMS   float64
}

// Response records the outcome.
type Response struct {
	Request   Request
	Node      string // serving node
	Version   string // chosen version label ("" = primary)
	Bytes     int
	LatencyMS float64
	Err       error
}

// Node is one Patia server node: a device + its atom store + a
// component assembly agents live in.
type Node struct {
	Device *device.Device
	Store  *Store
	Asm    *component.Assembly
}

// System is the whole Patia deployment.
type System struct {
	mu      sync.Mutex
	Nodes   map[string]*Node
	Reg     *monitor.Registry
	Log     *trace.Log
	AM      *adapt.Manager
	clock   func() float64
	agents  map[string]*Agent // agent name -> live agent
	agentAt map[string]string // agent name -> node
	// ServiceCostMS is the base service time per request.
	ServiceCostMS float64
	// LoadPerRPS converts request rate to device load units.
	LoadPerRPS float64
	switches   int
}

// ErrNoAgent is returned when a request targets a missing agent.
var ErrNoAgent = errors.New("patia: no such agent")

// NewSystem builds a Patia deployment over named nodes (all server
// class).
func NewSystem(nodeNames []string, reg *monitor.Registry, log *trace.Log, clock func() float64) *System {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	if log == nil {
		log = trace.New()
	}
	if reg == nil {
		reg = monitor.NewRegistry()
	}
	specs := device.DefaultSpecs()
	sys := &System{
		Nodes:         map[string]*Node{},
		Reg:           reg,
		Log:           log,
		clock:         clock,
		agents:        map[string]*Agent{},
		agentAt:       map[string]string{},
		ServiceCostMS: 2,
		LoadPerRPS:    1,
	}
	for _, n := range nodeNames {
		d := device.New(n, specs[device.ClassServer])
		sys.Nodes[n] = &Node{
			Device: d,
			Store:  NewStore(n),
			Asm:    component.NewAssembly(log, clock),
		}
	}
	// One adaptivity manager handles migrations across assemblies.
	first := sys.Nodes[nodeNames[0]]
	sys.AM = adapt.NewManager(first.Asm, log, clock)
	return sys
}

// Switches reports agent migrations performed.
func (s *System) Switches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.switches
}

// DeployAgent starts a service agent on a node.
func (s *System) DeployAgent(name, node string) (*Agent, error) {
	n, ok := s.Nodes[node]
	if !ok {
		return nil, fmt.Errorf("patia: unknown node %q", node)
	}
	a := NewAgent(name, node, n.Store)
	if err := n.Asm.Add(a.Comp); err != nil {
		return nil, err
	}
	if err := a.Comp.Start(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.agents[name] = a
	s.agentAt[name] = node
	s.mu.Unlock()
	return a, nil
}

// AgentNode reports where an agent currently runs.
func (s *System) AgentNode(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.agentAt[name]
	return n, ok
}

// Serve handles one request through the named agent, charging load
// and computing latency from the serving node's utilisation (an
// M/M/1-flavoured blow-up as the node saturates).
func (s *System) Serve(agent string, req Request) Response {
	s.mu.Lock()
	a, ok := s.agents[agent]
	s.mu.Unlock()
	if !ok {
		return Response{Request: req, Err: fmt.Errorf("%w: %s", ErrNoAgent, agent)}
	}
	node := s.Nodes[a.Node]
	out, err := node.Asm.Call("patia-frontend", "serve", component.Request{
		Op:   "GET",
		Args: map[string]any{"atom": req.AtomID, "client": req.Client},
	})
	if err != nil {
		return Response{Request: req, Node: a.Node, Err: err}
	}
	atom := out.(*Atom)

	util := node.Device.Util()
	latency := s.ServiceCostMS / maxF(0.05, 1-util/100)

	// Version choice via the atom's own constraints (rules 450/595).
	version, bytes := s.chooseVersion(atom, a.Node)
	return Response{
		Request: req, Node: a.Node, Version: version,
		Bytes: bytes, LatencyMS: latency,
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// chooseVersion evaluates the atom's constraint rules for a selection
// decision; a decision naming a known version label picks it.
func (s *System) chooseVersion(atom *Atom, node string) (string, int) {
	bytes := atom.Bytes
	if atom.Constraints == nil || atom.Constraints.Len() == 0 {
		return "", bytes
	}
	ctx := &constraint.Context{Env: s.Reg, Self: node}
	d, _, err := atom.Constraints.FirstDecision(ctx)
	if err != nil || d.Kind == constraint.DecisionNone {
		return "", bytes
	}
	// A target like node3.videosmall.ram names version "videosmall".
	segs := d.Target.Segments
	for _, seg := range segs {
		if sz, ok := atom.Versions[seg]; ok {
			return seg, sz
		}
	}
	return "", bytes
}

// SelectVersion exposes constraint-driven version choice (rule 595
// experiments and external callers).
func (s *System) SelectVersion(atom *Atom, node string) (string, int) {
	return s.chooseVersion(atom, node)
}

// frontend registers the request entry point on a node's assembly so
// Serve can call through a concrete binding (Figure 7's "request
// comes into the system; is received by a service-agent component").
func (s *System) wireFrontend(node string, agent string) error {
	n := s.Nodes[node]
	if _, ok := n.Asm.Component("patia-frontend"); !ok {
		fe := component.New("patia-frontend").Require("serve", "http")
		if err := n.Asm.Add(fe); err != nil {
			return err
		}
		if err := fe.Start(); err != nil {
			return err
		}
	}
	if b, ok := n.Asm.BoundTo("patia-frontend", "serve"); ok && b.ToComp == agent {
		return nil
	}
	if _, ok := n.Asm.BoundTo("patia-frontend", "serve"); ok {
		if err := n.Asm.Unbind("patia-frontend", "serve"); err != nil {
			return err
		}
	}
	return n.Asm.Bind("patia-frontend", "serve", agent, "serve")
}

// WireFrontend exposes frontend wiring for deployments.
func (s *System) WireFrontend(node, agent string) error { return s.wireFrontend(node, agent) }

// MigrateAgent SWITCHes an agent to another node, moving both data
// availability (target must hold the replicas) and processing state.
func (s *System) MigrateAgent(name, toNode string) error {
	s.mu.Lock()
	a, ok := s.agents[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoAgent, name)
	}
	dst, ok := s.Nodes[toNode]
	if !ok {
		return fmt.Errorf("patia: unknown node %q", toNode)
	}
	if a.Node == toNode {
		return nil // already there
	}
	src := s.Nodes[a.Node]
	replacement := NewAgent(name, toNode, dst.Store)
	if err := s.AM.Migrate(name, src.Asm, replacement.Comp, dst.Asm); err != nil {
		return err
	}
	// Migrate carried the serialized AgentState into replacement.State
	// via the component Stateful interface.
	s.mu.Lock()
	s.agents[name] = replacement
	s.agentAt[name] = toNode
	s.switches++
	s.mu.Unlock()
	if err := s.wireFrontend(toNode, name); err != nil {
		return err
	}
	s.Log.Emit(s.clock(), trace.KindMigrate, "patia",
		"agent %s migrated to %s (served=%d carried)", name, toNode, replacement.State.Served)
	return nil
}

// PublishVitals pushes every node's vitals into the registry.
func (s *System) PublishVitals(t float64) {
	names := make([]string, 0, len(s.Nodes))
	for n := range s.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Nodes[n].Device.PublishVitals(s.Reg, t)
	}
}

// Table2Rules returns the paper's Table 2 constraint set for an atom
// replicated on node1 and node2 (rows 450 and 455) — the video rule
// 595 is attached by Table2VideoRules.
func Table2Rules() *constraint.RuleSet {
	return constraint.NewRuleSet(
		constraint.PrioritisedRule{ID: 455, Priority: 0, Rule: constraint.MustParse(
			"If processor-util > 90% then SWITCH ((node1.Page1.html, node2.Page1.html)")},
		constraint.PrioritisedRule{ID: 450, Priority: 1, Rule: constraint.MustParse(
			"Select BEST (node1.Page1.html, node2.Page1.html)")},
	)
}

// Table2VideoRules returns row 595 for atom 153.
func Table2VideoRules() *constraint.RuleSet {
	return constraint.NewRuleSet(
		constraint.PrioritisedRule{ID: 595, Priority: 0, Rule: constraint.MustParse(
			"If bandwidth > 30 < 100 Kbps then BEST(node1.videohalf.ram(time parms), node2.videohalf.ram(time parms), node3.videohalf.ram(time parms)) else node3.videosmall.ram(time parms).")},
	)
}

package patia

import (
	"fmt"

	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/session"
	"github.com/adm-project/adm/internal/simnet"
	"github.com/adm-project/adm/internal/trace"
)

// CrowdPhase is one segment of a flash-crowd schedule.
type CrowdPhase struct {
	DurationMS float64
	RPS        float64
}

// CrowdConfig parameterises a flash-crowd run.
type CrowdConfig struct {
	// Adaptive enables the Table 2 SWITCH rule; off = static baseline.
	Adaptive bool
	// IntervalMS is the measurement/adaptation tick.
	IntervalMS float64
	// Phases is the request-rate schedule.
	Phases []CrowdPhase
	// BackgroundLoad is pre-existing load on node1 (the typing-pool
	// machine node2 is idle).
	BackgroundLoad float64
	// CooldownMS suppresses repeated switches.
	CooldownMS float64
}

// DefaultCrowdConfig is the Table 2 experiment: steady traffic, a
// 6-second flash crowd, then decay.
func DefaultCrowdConfig(adaptive bool) CrowdConfig {
	return CrowdConfig{
		Adaptive:   adaptive,
		IntervalMS: 100,
		Phases: []CrowdPhase{
			{DurationMS: 2000, RPS: 50},
			{DurationMS: 6000, RPS: 320},
			{DurationMS: 2000, RPS: 60},
		},
		BackgroundLoad: 150,
		CooldownMS:     500,
	}
}

// IntervalStat is one tick's measurements.
type IntervalStat struct {
	TimeMS    float64
	RPS       float64
	Node      string
	Util      float64
	LatencyMS float64
}

// CrowdResult summarises a run.
type CrowdResult struct {
	Intervals []IntervalStat
	Switches  int
	// MeanLatencyMS is the request-weighted mean.
	MeanLatencyMS float64
	// PeakLatencyMS is the worst interval.
	PeakLatencyMS float64
	// SaturatedTicks counts intervals at ≥99% utilisation.
	SaturatedTicks int
	Log            *trace.Log
}

// RunFlashCrowd executes the Table 2 flash-crowd experiment: Page1
// replicated on node1/node2, the agent starting on node1 (which also
// carries background load), constraint 455 migrating it when
// processor-util exceeds 90%.
func RunFlashCrowd(cfg CrowdConfig) (*CrowdResult, error) {
	clock := simnet.NewClock()
	log := trace.New()
	reg := monitor.NewRegistry()
	sys := NewSystem([]string{"node1", "node2"}, reg, log, clock.Now)

	page := &Atom{ID: 123, Name: "Page1.html", Type: "html", Bytes: 40_000, Constraints: Table2Rules()}
	sys.Nodes["node1"].Store.Put(page)
	sys.Nodes["node2"].Store.Put(page)
	if _, err := sys.DeployAgent("agent-123", "node1"); err != nil {
		return nil, err
	}
	if err := sys.WireFrontend("node1", "agent-123"); err != nil {
		return nil, err
	}

	// The session manager watches the serving node's utilisation and
	// executes SWITCH decisions via agent migration.
	var sm *session.Manager
	handler := func(d constraint.Decision, _ *constraint.PrioritisedRule) error {
		if d.Kind != constraint.DecisionSwitch {
			return nil
		}
		if err := sys.MigrateAgent("agent-123", d.Target.Node()); err != nil {
			return err
		}
		sm.SetSelf(d.Target.Node())
		return nil
	}
	// The placement session watches only the SWITCH rule (455); rule
	// 450 (BEST) is a per-request replica-selection constraint and
	// must not drive agent placement.
	placementRules := constraint.NewRuleSet(constraint.PrioritisedRule{
		ID: 455, Priority: 0, Rule: constraint.MustParse(
			"If processor-util > 90% then SWITCH ((node1.Page1.html, node2.Page1.html)")})
	sm = session.New("patia-session", reg, placementRules, log, clock.Now, handler)
	sm.CooldownMS = cfg.CooldownMS
	sm.SetSelf("node1")
	cur := constraint.Target{Segments: []string{"node1", "Page1", "html"}}
	sm.SetCurrent(&cur)

	res := &CrowdResult{Log: log}
	totalReqs, totalLatency := 0.0, 0.0

	elapsed := 0.0
	for _, phase := range cfg.Phases {
		for t := 0.0; t < phase.DurationMS; t += cfg.IntervalMS {
			clock.Schedule(0, func() {})
			clock.RunUntil(elapsed)

			node, _ := sys.AgentNode("agent-123")
			// Apply this tick's load: serving node takes the crowd on
			// top of any background; node1 always keeps its background.
			for name, n := range sys.Nodes {
				load := 0.0
				if name == "node1" {
					load += cfg.BackgroundLoad
				}
				if name == node {
					load += phase.RPS
				}
				n.Device.SetLoad(load)
			}
			sys.PublishVitals(elapsed)

			if cfg.Adaptive {
				if _, err := sm.CheckNow(); err != nil {
					return nil, fmt.Errorf("patia: adaptation: %w", err)
				}
				node, _ = sys.AgentNode("agent-123")
			}

			// Serve one sample request to measure latency at this tick.
			resp := sys.Serve("agent-123", Request{Client: "c1", AtomID: 123, AtMS: elapsed})
			if resp.Err != nil {
				return nil, resp.Err
			}
			util := sys.Nodes[node].Device.Util()
			res.Intervals = append(res.Intervals, IntervalStat{
				TimeMS: elapsed, RPS: phase.RPS, Node: node,
				Util: util, LatencyMS: resp.LatencyMS,
			})
			if util >= 99 {
				res.SaturatedTicks++
			}
			totalReqs += phase.RPS
			totalLatency += phase.RPS * resp.LatencyMS
			if resp.LatencyMS > res.PeakLatencyMS {
				res.PeakLatencyMS = resp.LatencyMS
			}
			elapsed += cfg.IntervalMS
		}
	}
	if totalReqs > 0 {
		res.MeanLatencyMS = totalLatency / totalReqs
	}
	res.Switches = sys.Switches()
	return res, nil
}

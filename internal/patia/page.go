package patia

import (
	"errors"
	"fmt"
	"sort"

	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/trace"
)

// Figure 7's composition story: "the components that compose a
// webpage can be distributed over many machines. This can provide the
// advantage of intra-request parallelism as well as fault-tolerance
// where replication is used."

// PageSpec names a composite web page and the atoms composing it.
type PageSpec struct {
	Name    string
	AtomIDs []int
}

// AtomFetch is the outcome of fetching one atom of a page.
type AtomFetch struct {
	AtomID     int
	Node       string
	Version    string
	Bytes      int
	LatencyMS  float64
	FailedOver bool
}

// PageResponse is a composite-page fetch result.
type PageResponse struct {
	Page  string
	Atoms []AtomFetch
	// ParallelMS is the page latency with intra-request parallelism
	// (atoms fetched concurrently: max of the per-atom latencies).
	ParallelMS float64
	// SequentialMS is the single-node baseline (sum of latencies).
	SequentialMS float64
	// FailedOver counts atoms served from a fallback replica.
	FailedOver int
}

// ErrNoReplica is returned when no live node holds an atom.
var ErrNoReplica = errors.New("patia: no live replica")

// NodesHolding lists live nodes with a replica of the atom, sorted.
func (s *System) NodesHolding(atomID int) []string {
	var out []string
	for _, name := range s.holders(atomID) {
		if s.Nodes[name].Device.Alive() {
			out = append(out, name)
		}
	}
	return out
}

// holders lists every node with a replica, dead or alive — the
// constraint evaluator works from (possibly stale) vitals, so the
// liveness check belongs at bind time, in pickReplica.
func (s *System) holders(atomID int) []string {
	var out []string
	for name, n := range s.Nodes {
		if n.Store.Has(atomID) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// FetchPage fetches every atom of a composite page, choosing a
// serving replica per atom by the BEST rule over live node vitals and
// failing over when the preferred node is dead. The response reports
// both the parallel (max) and sequential (sum) page latencies.
func (s *System) FetchPage(spec PageSpec, client string) (*PageResponse, error) {
	resp := &PageResponse{Page: spec.Name}
	for _, id := range spec.AtomIDs {
		nodes := s.holders(id)
		if len(nodes) == 0 {
			return nil, fmt.Errorf("%w: atom %d of page %s", ErrNoReplica, id, spec.Name)
		}
		chosen, failedOver, err := s.pickReplica(id, nodes)
		if err != nil {
			return nil, fmt.Errorf("page %s: %w", spec.Name, err)
		}
		node := s.Nodes[chosen]
		atom, _ := node.Store.Get(id)
		util := node.Device.Util()
		latency := s.ServiceCostMS / maxF(0.05, 1-util/100)
		version, bytes := s.chooseVersion(atom, chosen)
		af := AtomFetch{
			AtomID: id, Node: chosen, Version: version, Bytes: bytes,
			LatencyMS: latency, FailedOver: failedOver,
		}
		if failedOver {
			resp.FailedOver++
			s.Log.Emit(s.clock(), trace.KindInfo, "patia",
				"atom %d failed over to %s", id, chosen)
		}
		resp.Atoms = append(resp.Atoms, af)
		resp.SequentialMS += latency
		if latency > resp.ParallelMS {
			resp.ParallelMS = latency
		}
	}
	return resp, nil
}

// pickReplica runs BEST over every replica holder (vitals may be
// stale); a dead preferred node falls back to the best live
// alternative, which is the fault-tolerance half of Figure 7's
// replication story.
func (s *System) pickReplica(atomID int, holders []string) (string, bool, error) {
	var args []constraint.Target
	for _, n := range holders {
		args = append(args, constraint.Target{Segments: []string{n, fmt.Sprintf("atom%d", atomID)}})
	}
	rule := &constraint.Rule{Select: &constraint.Call{Fn: "BEST", Args: args}}
	chosen := holders[0]
	if d, err := rule.Eval(&constraint.Context{Env: s.Reg}); err == nil {
		chosen = d.Target.Node()
	}
	if n, ok := s.Nodes[chosen]; ok && n.Device.Alive() {
		return chosen, false, nil
	}
	// Fail over: best live alternative by current vitals, falling
	// back to name order when vitals are unavailable.
	bestScore := -1e18
	alt := ""
	for _, name := range holders {
		if name == chosen || !s.Nodes[name].Device.Alive() {
			continue
		}
		capac, ok1 := s.Reg.Metric("capacity", name)
		load, ok2 := s.Reg.Metric("load", name)
		score := 0.0
		if ok1 && ok2 {
			score = capac - load
		}
		if alt == "" || score > bestScore {
			alt, bestScore = name, score
		}
	}
	if alt == "" {
		return "", false, fmt.Errorf("%w: atom %d", ErrNoReplica, atomID)
	}
	return alt, true, nil
}

// KillNode fails a node (failure injection). Agents on it stop
// serving; replicas on it disappear from NodesHolding.
func (s *System) KillNode(name string) error {
	n, ok := s.Nodes[name]
	if !ok {
		return fmt.Errorf("patia: unknown node %q", name)
	}
	n.Device.Kill()
	s.Log.Emit(s.clock(), trace.KindViolation, "patia", "node %s failed", name)
	return nil
}

package patia

import (
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/adm-project/adm/internal/server"
)

// ServerCrowdConfig drives a flash crowd against a LIVE admsqld
// server over the wire protocol — the Table 2 experiment re-aimed at
// the database itself. Closed-loop clients issue Query back to back;
// the schedule is steady traffic, a client surge, then decay.
type ServerCrowdConfig struct {
	Addr  string
	Token string

	// SteadyClients run for the whole schedule; CrowdClients join for
	// the crowd window only.
	SteadyClients int
	CrowdClients  int

	SteadyMS float64
	CrowdMS  float64
	DecayMS  float64

	// WarmupMS excludes the first part of the crowd window from the
	// p99 sample: statements already marinating in the queue when the
	// controller reacts drain with pre-adaptation latencies, and the
	// gated number is the SLO under SUSTAINED overload, not the
	// controller's reaction transient. Served/shed counts still
	// include the warmup.
	WarmupMS float64

	// SteadyThinkMS is the steady clients' pause between requests, so
	// background traffic does not itself pin every execution slot.
	SteadyThinkMS float64

	// Query is the statement every client loops on.
	Query string

	// RetryBackoff is the client-side pause after a retryable
	// rejection (shed/conflict) before re-issuing.
	RetryBackoff time.Duration
}

// ServerCrowdResult summarises one drive.
type ServerCrowdResult struct {
	// CrowdP99MS is the 99th-percentile client-observed latency of
	// statements SERVED during the crowd window — the SLO the
	// degradation ladder defends. Shed statements are counted, not
	// timed: rejection in microseconds is the mechanism, and folding
	// it in would let a server look fast by serving nothing.
	CrowdP99MS  float64
	CrowdServed int64
	CrowdShed   int64

	// Decay-phase outcomes: ShedRecovery = served/(served+shed) after
	// the crowd leaves. A ladder that fails to release keeps shedding
	// healthy traffic and this collapses.
	DecayServed  int64
	DecayShed    int64
	ShedRecovery float64

	TotalServed int64
	Errors      int64 // non-retryable failures (must be 0 in a healthy run)
}

// crowdStats is the shared collector; one mutex, touched once per
// request.
type crowdStats struct {
	mu                     sync.Mutex
	crowdLatsMS            []float64
	crowdServed, crowdShed int64
	decayServed, decayShed int64
	totalServed, errors    int64
}

// RunServerCrowd executes the schedule and aggregates per-phase
// outcomes. Every client is its own wire connection.
func RunServerCrowd(cfg ServerCrowdConfig) (*ServerCrowdResult, error) {
	if cfg.Query == "" {
		return nil, errors.New("patia: server crowd needs a query")
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 500 * time.Microsecond
	}
	start := time.Now()
	steadyEnd := start.Add(time.Duration(cfg.SteadyMS) * time.Millisecond)
	crowdEnd := steadyEnd.Add(time.Duration(cfg.CrowdMS) * time.Millisecond)
	end := crowdEnd.Add(time.Duration(cfg.DecayMS) * time.Millisecond)

	warmupEnd := steadyEnd.Add(time.Duration(cfg.WarmupMS) * time.Millisecond)

	st := &crowdStats{}
	var wg sync.WaitGroup
	think := time.Duration(cfg.SteadyThinkMS * float64(time.Millisecond))
	for i := 0; i < cfg.SteadyClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runCrowdClient(cfg, st, steadyEnd, warmupEnd, crowdEnd, end, think)
		}()
	}
	for i := 0; i < cfg.CrowdClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Until(steadyEnd))
			runCrowdClient(cfg, st, steadyEnd, warmupEnd, crowdEnd, crowdEnd, 0)
		}()
	}
	wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	res := &ServerCrowdResult{
		CrowdServed:  st.crowdServed,
		CrowdShed:    st.crowdShed,
		DecayServed:  st.decayServed,
		DecayShed:    st.decayShed,
		TotalServed:  st.totalServed,
		Errors:       st.errors,
		ShedRecovery: 1,
	}
	if n := st.decayServed + st.decayShed; n > 0 {
		res.ShedRecovery = float64(st.decayServed) / float64(n)
	}
	if n := len(st.crowdLatsMS); n > 0 {
		sort.Float64s(st.crowdLatsMS)
		idx := (n * 99) / 100
		if idx >= n {
			idx = n - 1
		}
		res.CrowdP99MS = st.crowdLatsMS[idx]
	}
	return res, nil
}

// runCrowdClient loops the query on one connection until stopAt.
// Latencies and outcomes are bucketed by the phase the request
// STARTED in; a poisoned connection is redialled.
func runCrowdClient(cfg ServerCrowdConfig, st *crowdStats,
	steadyEnd, warmupEnd, crowdEnd, stopAt time.Time, think time.Duration) {
	var c *server.Client
	defer func() {
		if c != nil {
			_ = c.Close() // drive teardown; the server's leak oracles cover it
		}
	}()
	for {
		reqStart := time.Now()
		if !reqStart.Before(stopAt) {
			return
		}
		if c == nil {
			var err error
			c, err = server.Dial(cfg.Addr, cfg.Token)
			if err != nil {
				st.mu.Lock()
				st.errors++
				st.mu.Unlock()
				time.Sleep(cfg.RetryBackoff)
				continue
			}
		}
		_, err := c.Query(cfg.Query)
		latMS := float64(time.Since(reqStart).Nanoseconds()) / 1e6
		inCrowd := !reqStart.Before(steadyEnd) && reqStart.Before(crowdEnd)
		inDecay := !reqStart.Before(crowdEnd)

		st.mu.Lock()
		switch {
		case err == nil:
			st.totalServed++
			if inCrowd {
				st.crowdServed++
				if !reqStart.Before(warmupEnd) {
					st.crowdLatsMS = append(st.crowdLatsMS, latMS)
				}
			} else if inDecay {
				st.decayServed++
			}
		default:
			var re *server.RemoteError
			if errors.As(err, &re) && re.Retryable() {
				if inCrowd {
					st.crowdShed++
				} else if inDecay {
					st.decayShed++
				}
			} else {
				st.errors++
				if !errors.As(err, &re) {
					// Transport failure: drop and redial.
					_ = c.Close()
					c = nil
				}
			}
		}
		st.mu.Unlock()
		if err != nil {
			time.Sleep(cfg.RetryBackoff)
		} else if think > 0 {
			time.Sleep(think)
		}
	}
}

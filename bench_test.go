// Benchmarks regenerating the paper's evaluation surface: one bench
// per table/figure (see DESIGN.md §3 for the mapping) plus the
// ablations of DESIGN.md §4 and substrate micro-benchmarks. Run:
//
//	go test -bench=. -benchmem
package adm

import (
	"fmt"
	"testing"

	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/device"
	"github.com/adm-project/adm/internal/experiments"
	"github.com/adm-project/adm/internal/goos"
	"github.com/adm-project/adm/internal/kendra"
	"github.com/adm-project/adm/internal/machine"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/operators"
	"github.com/adm-project/adm/internal/patia"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
)

// ---------------------------------------------------------------------------
// Table 1: RPC cycles per kernel path. The simulated cycle count is
// reported as a custom metric next to the wall-time cost of running
// the path model.

func benchKernelPath(b *testing.B, path goos.KernelPath, paperCycles float64) {
	b.Helper()
	m := machine.New(machine.DefaultCostModel(), 16)
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := path.RPC(m)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles/rpc")
	b.ReportMetric(paperCycles, "paper-cycles/rpc")
}

func BenchmarkTable1_BSD(b *testing.B)  { benchKernelPath(b, goos.DefaultBSD(), 55000) }
func BenchmarkTable1_Mach(b *testing.B) { benchKernelPath(b, goos.DefaultMach(), 3000) }
func BenchmarkTable1_L4(b *testing.B)   { benchKernelPath(b, goos.DefaultL4(), 665) }

func BenchmarkTable1_Go(b *testing.B) {
	g, err := goos.NewGoPath()
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := g.RPC(nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles/rpc")
	b.ReportMetric(73, "paper-cycles/rpc")
}

// §5.1 memory claim: bytes of protection metadata per interface.
func BenchmarkMemoryPerInterface(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		sys := goos.NewSystem(512)
		text := machine.NewSeq().ALU("logic", 16).Build()
		if _, err := sys.LoadType("svc", text); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			inst, err := sys.NewInstance(fmt.Sprintf("svc-%03d", j), "svc", 256)
			if err != nil {
				b.Fatal(err)
			}
			sys.ORB().Register(inst, 2, nil)
		}
		ratio = sys.Footprint().Ratio()
	}
	b.ReportMetric(32, "bytes/interface")
	b.ReportMetric(ratio, "pagebased/go-ratio")
}

// ---------------------------------------------------------------------------
// Figure 1: the full adaptation loop (monitors → session → switch).

func BenchmarkFigure1_AdaptationLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1Loop(); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 5: ADL diff + transactional application of the docked →
// wireless switchover.
func BenchmarkFigure5_Switchover(b *testing.B) {
	model := adl.MustParse(adl.Figure4)
	factory := adapt.TypeFactory(model, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		asm := component.NewAssembly(nil, nil)
		if err := adapt.Instantiate(asm, model, "docked", factory); err != nil {
			b.Fatal(err)
		}
		am := adapt.NewManager(asm, nil, nil)
		plan, err := model.Diff("docked", "wireless")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := am.Apply(plan, factory); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 6: one ORB-mediated invocation (the 73-cycle path).
func BenchmarkFigure6_ORBInvoke(b *testing.B) {
	g, err := goos.NewGoPath()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RPC(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 3 / Scenario 1: BEST+NEAREST evaluation against live vitals.
func BenchmarkFigure3_Scenario1_InterQuery(b *testing.B) {
	tb := device.NewTestbed(1)
	ctx := &constraint.Context{Env: tb.Reg}
	best := constraint.MustParse("Select BEST (PDA, Laptop)")
	near := constraint.MustParse("Select NEAREST (PDA, Laptop)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := best.Eval(ctx); err != nil {
			b.Fatal(err)
		}
		if _, err := near.Eval(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// Scenario 2: full undock-mid-stream runs.
func BenchmarkScenario2(b *testing.B) {
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{{"Static", false}, {"Adaptive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var completion float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunScenario2(mode.adaptive)
				if err != nil {
					b.Fatal(err)
				}
				completion = r.CompletionMS
			}
			b.ReportMetric(completion, "sim-ms/stream")
		})
	}
}

// Scenario 3: mid-query re-optimisation vs static execution.
func BenchmarkScenario3(b *testing.B) {
	var peak int
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunScenario3()
		if err != nil {
			b.Fatal(err)
		}
		peak = r.PeakHashRows
	}
	b.ReportMetric(float64(peak), "peak-hash-rows")
}

// ---------------------------------------------------------------------------
// Table 2: Patia flash crowd and the banded video rule.

func BenchmarkTable2_FlashCrowd(b *testing.B) {
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{{"Static", false}, {"Adaptive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				r, err := patia.RunFlashCrowd(patia.DefaultCrowdConfig(mode.adaptive))
				if err != nil {
					b.Fatal(err)
				}
				lat = r.MeanLatencyMS
			}
			b.ReportMetric(lat, "sim-mean-latency-ms")
		})
	}
}

func BenchmarkTable2_VideoRule(b *testing.B) {
	reg := monitor.NewRegistry()
	sys := patia.NewSystem([]string{"node1", "node2", "node3"}, reg, trace.New(), nil)
	video := &patia.Atom{ID: 153, Name: "video.ram", Type: "video", Bytes: 4_000_000,
		Constraints: patia.Table2VideoRules(),
		Versions:    map[string]int{"videohalf": 2_000_000, "videosmall": 500_000}}
	sys.PublishVitals(0)
	reg.Publish(monitor.Sample{Key: monitor.Key{Metric: monitor.MetricBandwidth}, Value: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := sys.SelectVersion(video, "node1")
		if v != "videohalf" {
			b.Fatalf("version = %s", v)
		}
	}
}

// ---------------------------------------------------------------------------
// §2 adaptive operators.

func benchTimedJoin(b *testing.B, run func(l, r *operators.TimedSource) operators.RunResult) {
	b.Helper()
	var first float64
	for i := 0; i < b.N; i++ {
		var l, r []storage.Tuple
		for j := 0; j < 400; j++ {
			l = append(l, storage.Tuple{storage.IntValue(int64(j % 20))})
			r = append(r, storage.Tuple{storage.IntValue(int64(j % 20))})
		}
		ls := operators.NewTimedSource("L", l, operators.ArrivalPattern{PerTupleMS: 4, StallEvery: 100, StallMS: 800})
		rs := operators.NewTimedSource("R", r, operators.ArrivalPattern{PerTupleMS: 1})
		res := run(ls, rs)
		first = res.FirstOutputMS
	}
	b.ReportMetric(first, "sim-ms-to-first-tuple")
}

func BenchmarkAdaptiveJoins_Blocking(b *testing.B) {
	benchTimedJoin(b, func(l, r *operators.TimedSource) operators.RunResult {
		return operators.RunBlockingHashJoin(l, r, 0, 0)
	})
}

func BenchmarkAdaptiveJoins_Symmetric(b *testing.B) {
	benchTimedJoin(b, func(l, r *operators.TimedSource) operators.RunResult {
		return operators.RunSymmetricHashJoin(l, r, 0, 0)
	})
}

func BenchmarkAdaptiveJoins_XJoin(b *testing.B) {
	benchTimedJoin(b, func(l, r *operators.TimedSource) operators.RunResult {
		return operators.RunXJoin(l, r, 0, 0, operators.XJoinConfig{
			MemTuplesPerSide: 50, ReactiveBatch: 16, ReactiveStepMS: 2,
		})
	})
}

func BenchmarkRippleJoin(b *testing.B) {
	var l, r []storage.Tuple
	for j := 0; j < 300; j++ {
		l = append(l, storage.Tuple{storage.IntValue(int64(j % 25)), storage.FloatValue(float64(j))})
		r = append(r, storage.Tuple{storage.IntValue(int64(j % 25))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := operators.NewTimedSource("L", l, operators.ArrivalPattern{PerTupleMS: 1})
		rs := operators.NewTimedSource("R", r, operators.ArrivalPattern{PerTupleMS: 1})
		operators.RunRippleJoin(ls, rs, 0, 0, 1, 25)
	}
}

// Kendra: codec switching under the drop trace.
func BenchmarkKendra_CodecSwitch(b *testing.B) {
	tr := kendra.DropTrace()
	var quality float64
	for i := 0; i < b.N; i++ {
		res, err := kendra.Stream(kendra.DefaultConfig(true), tr)
		if err != nil {
			b.Fatal(err)
		}
		quality = res.MeanQuality
	}
	b.ReportMetric(quality, "mean-quality")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4).

func BenchmarkAblation_TrapVsScan(b *testing.B) {
	g, err := goos.NewGoPath()
	if err != nil {
		b.Fatal(err)
	}
	sys := g.System()
	caller, _ := sys.Instance("caller")
	callee, _ := sys.Instance("callee")
	id := sys.ORB().Register(callee, 4, nil)
	b.Run("SISR", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			res, err := g.RPC(nil)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
		b.ReportMetric(float64(cycles), "sim-cycles/rpc")
	})
	b.Run("Trapped", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			res, err := sys.ORB().InvokeTrapped(caller, id)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
		b.ReportMetric(float64(cycles), "sim-cycles/rpc")
	})
}

func BenchmarkAblation_Grain(b *testing.B) {
	// Fine: 3 chained components; Mono: one component, same work.
	work := func(x int) int { return x*31 + 7 }
	build := func(stages int) *component.Assembly {
		a := component.NewAssembly(nil, nil)
		for i := 0; i < stages; i++ {
			name := fmt.Sprintf("s%d", i)
			c := component.New(name)
			if i < stages-1 {
				c.Require("next", "svc")
			}
			idx := i
			c.Provide("in", "svc", func(req component.Request) (any, error) {
				v := work(req.Payload.(int))
				if idx == stages-1 {
					return v, nil
				}
				return a.Call(name, "next", component.Request{Payload: v})
			})
			if err := a.Add(c); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < stages-1; i++ {
			if err := a.Bind(fmt.Sprintf("s%d", i), "next", fmt.Sprintf("s%d", i+1), "in"); err != nil {
				b.Fatal(err)
			}
		}
		d := component.New("driver").Require("out", "svc")
		_ = a.Add(d)
		_ = a.Bind("driver", "out", "s0", "in")
		if err := a.StartAll(); err != nil {
			b.Fatal(err)
		}
		return a
	}
	b.Run("Fine5", func(b *testing.B) {
		a := build(5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Call("driver", "out", component.Request{Payload: i}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Mono", func(b *testing.B) {
		a := component.NewAssembly(nil, nil)
		m := component.New("m").Provide("in", "svc", func(req component.Request) (any, error) {
			v := req.Payload.(int)
			for j := 0; j < 5; j++ {
				v = work(v)
			}
			return v, nil
		})
		_ = a.Add(m)
		d := component.New("driver").Require("out", "svc")
		_ = a.Add(d)
		_ = a.Bind("driver", "out", "m", "in")
		if err := a.StartAll(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Call("driver", "out", component.Request{Payload: i}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblation_Gauges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGauges(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_TxRebind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTxRebind(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_EddyVsStatic(b *testing.B) {
	n := 4000
	tuples := make([]storage.Tuple, n)
	for i := range tuples {
		tuples[i] = storage.Tuple{storage.IntValue(int64(i))}
	}
	mk := func() []*operators.EddyFilter {
		return []*operators.EddyFilter{
			{Name: "A", Cost: 1, Pred: func(t storage.Tuple) bool {
				if t[0].Int < int64(n/2) {
					return t[0].Int%10 == 0
				}
				return t[0].Int%10 != 0
			}},
			{Name: "B", Cost: 1, Pred: func(t storage.Tuple) bool {
				if t[0].Int < int64(n/2) {
					return t[0].Int%10 != 0
				}
				return t[0].Int%10 == 0
			}},
		}
	}
	b.Run("Static", func(b *testing.B) {
		var w float64
		for i := 0; i < b.N; i++ {
			f := mk()
			w = operators.RunEddy(tuples, []*operators.EddyFilter{f[1], f[0]}, 0).Work
		}
		b.ReportMetric(w, "filter-work")
	})
	b.Run("Eddy", func(b *testing.B) {
		var w float64
		for i := 0; i < b.N; i++ {
			f := mk()
			w = operators.RunEddy(tuples, []*operators.EddyFilter{f[1], f[0]}, 100).Work
		}
		b.ReportMetric(w, "filter-work")
	})
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

func BenchmarkStorage_BTreeInsert(b *testing.B) {
	bt := storage.NewBTree("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(storage.IntValue(int64(i%10000)), storage.RID{Page: storage.PageID(i)})
	}
}

func BenchmarkStorage_HeapInsertScan(b *testing.B) {
	store := storage.NewStore()
	bm := storage.NewBufferManager(store, 256, storage.NewLRU())
	hf := storage.NewHeapFile("bench", store, bm)
	row := storage.Tuple{storage.IntValue(1), storage.StringValue("payload")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hf.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery_ParsePlanExecute(b *testing.B) {
	e := query.NewEngine(query.NewCatalog(256), nil, nil)
	e.MustExec("CREATE TABLE users (id INT, city STRING)")
	for i := 0; i < 1000; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO users VALUES (%d, 'c%d')", i, i%10))
	}
	e.MustExec("ANALYZE users")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT city, COUNT(*) FROM users WHERE id > 100 GROUP BY city"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponent_Call(b *testing.B) {
	a := component.NewAssembly(nil, nil)
	s := component.New("s").Provide("in", "svc", func(req component.Request) (any, error) {
		return req.Payload, nil
	})
	d := component.New("d").Require("out", "svc")
	_ = a.Add(s)
	_ = a.Add(d)
	_ = a.Bind("d", "out", "s", "in")
	_ = a.StartAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Call("d", "out", component.Request{Payload: i}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstraint_ParseEval(b *testing.B) {
	env := constraint.EnvMap{
		"bandwidth":      64,
		"capacity@node1": 10, "load@node1": 1,
		"capacity@node2": 10, "load@node2": 2,
		"capacity@node3": 10, "load@node3": 3,
	}
	r := constraint.MustParse("If bandwidth > 30 < 100 Kbps then BEST(node1.v, node2.v, node3.v) else node3.s")
	ctx := &constraint.Context{Env: env}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Eval(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// §6 Database Machine: getpage through the ORB vs a syscall boundary.
func BenchmarkDBMachine_GetPage(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		g, err := goos.MeasureGetPage(100)
		if err != nil {
			b.Fatal(err)
		}
		ratio = g.Ratio()
	}
	b.ReportMetric(73, "sim-cycles/getpage")
	b.ReportMetric(ratio, "syscall/orb-ratio")
}

// §1 failover: checkpointed query migrating to a replica.
func BenchmarkFailover_QueryJump(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Failover(); err != nil {
			b.Fatal(err)
		}
	}
}

// §6 extension: learned vs static switching threshold.
func BenchmarkLearning_ThresholdTuner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Learning(); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 7 composition: parallel multi-atom page fetch with replica
// choice per atom.
func BenchmarkFigure7_PageComposition(b *testing.B) {
	reg := monitor.NewRegistry()
	sys := patia.NewSystem([]string{"node1", "node2", "node3"}, reg, trace.New(), nil)
	atoms := []struct {
		a     *patia.Atom
		nodes []string
	}{
		{&patia.Atom{ID: 1, Name: "frame.txt", Type: "text", Bytes: 2_000}, []string{"node1", "node2"}},
		{&patia.Atom{ID: 2, Name: "logo.png", Type: "graphic", Bytes: 30_000}, []string{"node2", "node3"}},
		{&patia.Atom{ID: 3, Name: "clip.ram", Type: "video", Bytes: 900_000}, []string{"node3", "node1"}},
	}
	for _, e := range atoms {
		for _, n := range e.nodes {
			sys.Nodes[n].Store.Put(e.a)
		}
	}
	sys.PublishVitals(0)
	spec := patia.PageSpec{Name: "index.html", AtomIDs: []int{1, 2, 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.FetchPage(spec, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel join: rows/sec across worker counts. On a
// multicore box the 4-worker run should clear 2x the 1-worker rate;
// ci.sh gates the same workload via cmd/admbench against
// bench_baseline.json so single-core CI still catches regressions.

func benchParallelJoin(b *testing.B, rowsPerSide, workers int) {
	b.Helper()
	e := query.NewEngine(query.NewCatalog(4096), nil, nil)
	e.MustExec("CREATE TABLE l (k INT, v INT)")
	e.MustExec("CREATE TABLE r (k INT, v INT)")
	cat := e.Catalog()
	for i := 0; i < rowsPerSide; i++ {
		row := func(v int64) storage.Tuple {
			return storage.Tuple{storage.IntValue(int64(i)), storage.IntValue(v)}
		}
		if _, err := cat.Insert("l", row(int64(i*3))); err != nil {
			b.Fatal(err)
		}
		if _, err := cat.Insert("r", row(int64(i*7))); err != nil {
			b.Fatal(err)
		}
	}
	e.MustExec("ANALYZE l")
	e.MustExec("ANALYZE r")
	const sql = "SELECT l.v, r.v FROM l JOIN r ON l.k = r.k"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := e.ExecuteSQL(sql, query.ExecOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != rowsPerSide {
			b.Fatalf("join produced %d rows, want %d", len(res.Rows), rowsPerSide)
		}
	}
	b.ReportMetric(float64(2*rowsPerSide)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

func BenchmarkParallelJoin_100k_w1(b *testing.B) { benchParallelJoin(b, 100_000, 1) }
func BenchmarkParallelJoin_100k_w2(b *testing.B) { benchParallelJoin(b, 100_000, 2) }
func BenchmarkParallelJoin_100k_w4(b *testing.B) { benchParallelJoin(b, 100_000, 4) }
func BenchmarkParallelJoin_100k_w8(b *testing.B) { benchParallelJoin(b, 100_000, 8) }

// BenchmarkBatchHeapScan is the allocation gate of the vectorized scan
// path: one op = one full batched scan of a 50k-row heap file through
// a reused Batch. Steady state must stay O(1) allocs per scan (the
// page-list snapshot plus pool noise) — ci.sh fails if allocs/op
// regresses above its budget, which would mean per-tuple or per-page
// allocation crept back into the hot path.
func BenchmarkBatchHeapScan(b *testing.B) {
	store := storage.NewStore()
	bm := storage.NewBufferManager(store, 4096, storage.NewLRU())
	hf := storage.NewHeapFile("scan", store, bm)
	const rows = 50_000
	for i := 0; i < rows; i++ {
		if _, err := hf.Insert(storage.Tuple{
			storage.IntValue(int64(i)), storage.IntValue(int64(i * 3))}); err != nil {
			b.Fatal(err)
		}
	}
	scan := operators.NewBatchHeapScan(hf)
	batch := operators.GetBatch()
	defer operators.PutBatch(batch)
	drain := func() int {
		if err := scan.Open(); err != nil {
			b.Fatal(err)
		}
		defer scan.Close()
		total := 0
		for {
			n, err := scan.NextBatch(batch)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				return total
			}
			total += n
		}
	}
	drain() // warm the page decode caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := drain(); got != rows {
			b.Fatalf("scanned %d rows, want %d", got, rows)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

// benchSortTuples builds the shared sort-bench input: three-column
// rows, ~4 rows per key value.
func benchSortTuples(rows int) []storage.Tuple {
	out := make([]storage.Tuple, rows)
	for i := 0; i < rows; i++ {
		out[i] = storage.Tuple{
			storage.IntValue(int64((i * 2654435761) % (rows / 4))),
			storage.IntValue(int64(i % 97)),
			storage.IntValue(int64(i)),
		}
	}
	return out
}

// BenchmarkParallelSort measures the full parallel ORDER BY pipeline
// over materialised rows: worker-local typed-key runs merged through
// the loser tree and drained.
func benchParallelSort(b *testing.B, rows, workers int) {
	tuples := benchSortTuples(rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merge, err := operators.ParallelSortBatches(
			operators.NewSliceBatches(tuples, 0), 0, false,
			operators.ParallelConfig{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		got, err := operators.Drain(merge)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != rows {
			b.Fatalf("sorted %d rows, want %d", len(got), rows)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

func BenchmarkParallelSort_100k_w1(b *testing.B) { benchParallelSort(b, 100_000, 1) }
func BenchmarkParallelSort_100k_w4(b *testing.B) { benchParallelSort(b, 100_000, 4) }

// BenchmarkTopK is the materialisation gate of the bounded Top-K path:
// one op = ORDER BY ... LIMIT 10 over 100k materialised rows through
// the per-worker heaps. ci.sh gates both allocs/op and B/op — a heap
// that silently re-materialised the input would blow the byte budget
// even if it stayed within a few allocations.
func BenchmarkTopK(b *testing.B) {
	const rows, k = 100_000, 10
	tuples := benchSortTuples(rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := operators.ParallelTopKBatches(
			operators.NewSliceBatches(tuples, 0), 0, false, k,
			operators.ParallelConfig{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != k {
			b.Fatalf("top-k produced %d rows, want %d", len(got), k)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
}

package adm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/trace"
)

// The facade test: a downstream user's whole workflow through the
// public API only — components, ADL, rules, monitors, the declarative
// System, the Go! model, the SQL engine and the experiment runners.

func TestFacadeComponentWorkflow(t *testing.T) {
	asm := NewAssembly(NewTraceLog(), nil)
	cache := NewComponent("cache").Provide("get", "cache",
		func(req Request) (any, error) { return "hit:" + req.Op, nil })
	app := NewComponent("app").Require("cache", "cache")
	if err := asm.Add(cache); err != nil {
		t.Fatal(err)
	}
	if err := asm.Add(app); err != nil {
		t.Fatal(err)
	}
	if err := asm.Bind("app", "cache", "cache", "get"); err != nil {
		t.Fatal(err)
	}
	if err := asm.StartAll(); err != nil {
		t.Fatal(err)
	}
	out, err := asm.Call("app", "cache", Request{Op: "k1"})
	if err != nil || out != "hit:k1" {
		t.Fatalf("%v %v", out, err)
	}
}

func TestFacadeADLAndConstraints(t *testing.T) {
	model, err := ParseADL(Figure4ADL)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.ModeNames()) != 2 {
		t.Fatalf("modes = %v", model.ModeNames())
	}
	rule, err := ParseConstraint("If processor-util > 90% then SWITCH(a.x, b.x)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rule.String(), "SWITCH") {
		t.Fatalf("rule = %s", rule)
	}
	reg := NewRegistry()
	reg.Publish(Sample{Key: monitor.Key{Metric: "processor-util"}, Value: 95})
	reg.Publish(Sample{Key: monitor.Key{Metric: "capacity", Source: "a"}, Value: 10})
	reg.Publish(Sample{Key: monitor.Key{Metric: "load", Source: "a"}, Value: 1})
	reg.Publish(Sample{Key: monitor.Key{Metric: "capacity", Source: "b"}, Value: 10})
	reg.Publish(Sample{Key: monitor.Key{Metric: "load", Source: "b"}, Value: 9})
	d, err := rule.Eval(&ConstraintContext{Env: reg})
	if err != nil {
		t.Fatal(err)
	}
	if d.Target.Node() != "a" {
		t.Fatalf("decision = %v", d)
	}
}

func TestFacadeDeclarativeSystem(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		ADL:         Figure4ADL,
		InitialMode: "docked",
		Rules: []SystemRule{
			{ID: 1, Source: "If bandwidth < 1000 then wireless.mode", Action: ActionSwitchMode},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	sys.PublishMetric("bandwidth", "", 200)
	if sys.Mode() != "wireless" {
		t.Fatalf("mode = %s", sys.Mode())
	}
}

func TestFacadeGoSystemAndTable1(t *testing.T) {
	sys := NewGoSystem(32)
	if sys == nil {
		t.Fatal("nil system")
	}
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[3].Cycles != 73 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestFacadeEngineAndResumable(t *testing.T) {
	e := NewEngine(64)
	e.MustExec("CREATE TABLE t (a INT)")
	e.MustExec("INSERT INTO t VALUES (1), (2), (3)")
	res := e.MustExec("SELECT SUM(a) FROM t")
	if res.Rows[0][0].Float != 6 {
		t.Fatalf("sum = %v", res.Rows[0][0])
	}
	q, err := NewResumableAgg(e.Catalog(), "t", "a")
	if err != nil {
		t.Fatal(err)
	}
	q.Step(100)
	if got := q.Result().Sum; got != 6 {
		t.Fatalf("resumable sum = %v", got)
	}
}

func TestFacadeTunerAndTestbed(t *testing.T) {
	rule, _ := ParseConstraint("If processor-util > 90 then SWITCH(a.x, b.x)")
	tn, err := NewThresholdTuner(rule, TunerConfig{Base: 90, Max: 95, Step: 2, OscillationWindowMS: 100, CalmWindowMS: 500})
	if err != nil {
		t.Fatal(err)
	}
	tn.ObserveSwitch(0)
	tn.ObserveSwitch(50)
	if tn.Threshold() != 92 {
		t.Fatalf("threshold = %v", tn.Threshold())
	}
	tb := NewTestbed(1)
	if len(tb.Devices) != 3 {
		t.Fatalf("devices = %d", len(tb.Devices))
	}
}

func TestFacadeApplicationsAndExperiments(t *testing.T) {
	crowd, err := RunFlashCrowd(DefaultCrowdConfig(true))
	if err != nil || crowd.Switches < 1 {
		t.Fatalf("%+v %v", crowd, err)
	}
	audio, err := KendraStream(DefaultKendraConfig(true), KendraDropTrace())
	if err != nil || audio.StallRate() > 0.01 {
		t.Fatalf("%+v %v", audio, err)
	}
	ids := ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("experiments = %v", ids)
	}
	rep, err := RunExperiment("mem")
	if err != nil || rep.ID != "mem" {
		t.Fatalf("%v %v", rep, err)
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var ue *UnknownExperimentError
	if _, err := RunExperiment("nope"); !errors.As(err, &ue) || ue.ID != "nope" {
		t.Fatalf("error type: %v", err)
	}
}

func TestFacadeConstraintRuleSetTypes(t *testing.T) {
	// The facade's aliased types interoperate with the internal ones.
	var rs *RuleSet = constraint.NewRuleSet()
	if rs.Len() != 0 {
		t.Fatal("rule set")
	}
	var g Gauge = &EWMA{Alpha: 0.5}
	g.Observe(Sample{Value: 4})
	if g.Value() != 4 {
		t.Fatal("gauge")
	}
}

// TestFacadeDurableEngine drives the crash-safe path end to end
// through the public API: durable DDL/DML, a simulated crash, full
// recovery, and checksum quarantine surfaced via stats and the trace
// log.
func TestFacadeDurableEngine(t *testing.T) {
	wal, data := NewMemDisk(), NewMemDisk()
	db, err := OpenDB(wal, data, DBOptions{BufferFrames: 128})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewDurableEngine(db)
	if err != nil {
		t.Fatal(err)
	}
	e.MustExec("CREATE TABLE kv (k INT, v STRING)")
	for i := 0; i < 50; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'v%d')", i, i))
	}
	e.MustExec("CREATE INDEX ON kv (k)")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.MustExec("DELETE FROM kv WHERE k = 3")
	if st := db.Stats(); st.WALAppends == 0 || st.Checkpoints != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Crash and recover from disk snapshots.
	db2, err := OpenDB(NewMemDiskFrom(wal.Bytes()), NewMemDiskFrom(data.Bytes()), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewDurableEngine(db2)
	if err != nil {
		t.Fatal(err)
	}
	r := e2.MustExec("SELECT k FROM kv WHERE k = 3")
	if len(r.Rows) != 0 {
		t.Fatal("deleted row resurrected")
	}
	r = e2.MustExec("SELECT k, v FROM kv")
	if len(r.Rows) != 49 {
		t.Fatalf("%d rows after recovery, want 49", len(r.Rows))
	}

	// Corrupt one checkpointed frame: recovery must quarantine it,
	// count it, and surface it in the trace log — never serve it.
	raw := data.Bytes()
	raw[len(raw)-100] ^= 0xFF
	db3, err := OpenDB(NewMemDiskFrom(wal.Bytes()), NewMemDiskFrom(raw), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e3, err := NewDurableEngine(db3)
	if err != nil {
		t.Fatal(err)
	}
	st := db3.Stats()
	if st.Recovery.PagesQuarantined != 1 || st.Buffer.ChecksumFailures != 1 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	if n := e3.Trace().Count(trace.KindCorruption); n != 1 {
		t.Fatalf("trace corruption events = %d, want 1", n)
	}
	if _, err := e3.Exec("SELECT k, v FROM kv"); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("scan over quarantined page: %v", err)
	}
}

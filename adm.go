// Package adm is an adaptive data management toolkit: a full working
// realisation of the architecture sketched in Julie A. McCann's CIDR
// 2003 paper "The Database Machine: Old Story, New Slant?".
//
// The paper argues that for ubiquitous computing the DBMS and the OS
// must dissolve into one open set of fine-grained components —
// schedulers, buffer managers, optimisers, device drivers — glued by
// monitors, constraint rules and adaptivity managers, so that "at
// that instant the system becomes effectively a Database Machine".
// This module builds that whole stack in pure-stdlib Go:
//
//   - adm.Component / adm.Assembly — the fine-grained component model
//     with concrete runtime boundaries, typed ports and rebinding;
//   - adm.ParseADL — a Darwin-style ADL with `when` modes, validation,
//     and Diff for computing unbind/rebind plans (Figures 4–5);
//   - adm.ParseConstraint — the Table 2 rule language (`Select
//     BEST(...)`, `If processor-util > 90% then SWITCH(...)`, banded
//     bandwidth rules) evaluated against live gauges;
//   - adm.NewRegistry — monitors and gauges (EWMA, windows, trend);
//   - adm.NewSessionManager / adm.NewAdaptivityManager — the Figure 1
//     loop: constraint checking, alternative-plan design, transactional
//     unbind/rebind with rollback, and State-Manager-backed migration;
//   - adm.NewGoSystem — the Go! zero-kernel OS model: SISR load-time
//     code scanning, segment-protected components, and the ORB whose
//     null RPC costs 73 simulated cycles (Table 1);
//   - adm.NewEngine — a SQL engine (storage, B-trees, optimiser) with
//     mid-query re-optimisation at safe points (Scenario 3), plus the
//     adaptive operators the paper calls for: symmetric pipelined hash
//     join, XJoin, ripple join and eddies;
//   - adm.RunExperiment — regenerates every table and figure.
//
// See examples/ for runnable walk-throughs and DESIGN.md for the
// system inventory.
package adm

import (
	"github.com/adm-project/adm/internal/adapt"
	"github.com/adm-project/adm/internal/adl"
	"github.com/adm-project/adm/internal/component"
	"github.com/adm-project/adm/internal/constraint"
	"github.com/adm-project/adm/internal/core"
	"github.com/adm-project/adm/internal/datacomp"
	"github.com/adm-project/adm/internal/device"
	"github.com/adm-project/adm/internal/experiments"
	"github.com/adm-project/adm/internal/fault"
	"github.com/adm-project/adm/internal/goos"
	"github.com/adm-project/adm/internal/kendra"
	"github.com/adm-project/adm/internal/learn"
	"github.com/adm-project/adm/internal/lint"
	"github.com/adm-project/adm/internal/monitor"
	"github.com/adm-project/adm/internal/patia"
	"github.com/adm-project/adm/internal/query"
	"github.com/adm-project/adm/internal/session"
	"github.com/adm-project/adm/internal/simnet"
	"github.com/adm-project/adm/internal/storage"
	"github.com/adm-project/adm/internal/trace"
	"github.com/adm-project/adm/internal/xmlstream"
)

// Component model.
type (
	// Component is a fine-grained runtime component with provided and
	// required ports.
	Component = component.Component
	// Assembly is a running configuration of components and bindings.
	Assembly = component.Assembly
	// Request is one inter-component invocation.
	Request = component.Request
	// Service is a port's service type.
	Service = component.Service
	// Stateful is implemented by components with migratable state.
	Stateful = component.Stateful
)

// NewComponent constructs a component in the Loaded state.
func NewComponent(name string) *Component { return component.New(name) }

// NewAssembly constructs an empty assembly; log and clock may be nil.
func NewAssembly(log *TraceLog, clock func() float64) *Assembly {
	return component.NewAssembly(log, clock)
}

// Architecture description language.
type (
	// ADLModel is a parsed Darwin-style architecture description.
	ADLModel = adl.Model
	// ADLPlan is a reconfiguration plan produced by ADLModel.Diff.
	ADLPlan = adl.Plan
)

// ParseADL compiles ADL source (see adl.Figure4 for the grammar by
// example).
func ParseADL(src string) (*ADLModel, error) { return adl.Parse(src) }

// Figure4ADL is the paper's Figure 4/5 mobile-CBMS description.
const Figure4ADL = adl.Figure4

// Constraint language.
type (
	// Rule is a parsed adaptability constraint.
	Rule = constraint.Rule
	// RuleSet is a prioritised collection of rules.
	RuleSet = constraint.RuleSet
	// Decision is a rule evaluation outcome.
	Decision = constraint.Decision
	// ConstraintContext is the evaluation context for rules.
	ConstraintContext = constraint.Context
)

// ParseConstraint compiles one Table 2-style rule.
func ParseConstraint(src string) (*Rule, error) { return constraint.Parse(src) }

// Monitors and gauges.
type (
	// Registry routes monitor samples to gauges and answers metric
	// queries (it is the constraint-evaluation environment).
	Registry = monitor.Registry
	// Sample is one raw monitor reading.
	Sample = monitor.Sample
	// Gauge aggregates raw samples.
	Gauge = monitor.Gauge
	// EWMA is an exponentially weighted moving-average gauge.
	EWMA = monitor.EWMA
	// Trend is a least-squares slope gauge (flash-crowd detection).
	Trend = monitor.Trend
)

// NewRegistry returns an empty monitor registry.
func NewRegistry() *Registry { return monitor.NewRegistry() }

// Adaptivity machinery.
type (
	// AdaptivityManager applies reconfiguration plans transactionally.
	AdaptivityManager = adapt.Manager
	// StateManager captures and restores component execution state.
	StateManager = adapt.StateManager
	// SessionManager watches gauges, checks constraints and triggers
	// adaptations.
	SessionManager = session.Manager
	// ModeController switches an assembly between ADL modes.
	ModeController = session.ModeController
	// Factory builds components for plan-started instances.
	Factory = adapt.Factory
)

// NewAdaptivityManager builds an adaptivity manager over an assembly.
func NewAdaptivityManager(asm *Assembly, log *TraceLog, clock func() float64) *AdaptivityManager {
	return adapt.NewManager(asm, log, clock)
}

// NewSessionManager builds a session manager over a registry and rule
// set; handler executes fired decisions.
func NewSessionManager(name string, reg *Registry, rules *RuleSet,
	log *TraceLog, clock func() float64, handler session.DecisionHandler) *SessionManager {
	return session.New(name, reg, rules, log, clock, handler)
}

// NewModeController builds a controller applying ADL mode switches.
func NewModeController(model *ADLModel, am *AdaptivityManager, f Factory,
	mode string, log *TraceLog, clock func() float64) *ModeController {
	return session.NewModeController(model, am, f, mode, log, clock)
}

// TypeFactory derives a component factory from an ADL model.
func TypeFactory(model *ADLModel, impl func(typeName, port string) component.Handler) Factory {
	return adapt.TypeFactory(model, impl)
}

// Instantiate boots an assembly into an ADL mode's configuration.
func Instantiate(asm *Assembly, model *ADLModel, mode string, f Factory) error {
	return adapt.Instantiate(asm, model, mode, f)
}

// Static verification (internal/lint): the load-time analyzer
// families behind cmd/admlint, re-exported so embedders can validate
// architectures, rule sets and component images before Instantiate
// or LoadType — the paper's "evaluated before it runs" contract.
type (
	// Diagnostic is one positioned static-analysis finding.
	Diagnostic = lint.Diagnostic
	// DiagnosticSeverity grades a Diagnostic.
	DiagnosticSeverity = lint.Severity
	// MetricVocabulary declares the monitor metrics (units, ranges)
	// constraint rules are type-checked against.
	MetricVocabulary = lint.Vocabulary
	// MetricInfo is one MetricVocabulary entry.
	MetricInfo = lint.MetricInfo
)

// Diagnostic severities.
const (
	SeverityError   = lint.SeverityError
	SeverityWarning = lint.SeverityWarning
	SeverityInfo    = lint.SeverityInfo
)

// LintADL runs the configuration-graph checks over a parsed model:
// dangling bind endpoints, never-bound instances, duplicate modes,
// per-mode interface compatibility. file names the source in the
// diagnostics ("" is fine for in-memory models).
func LintADL(file string, m *ADLModel) []Diagnostic { return lint.AnalyzeADL(file, m) }

// LintRuleSet runs the constraint-rule static analysis (vocabulary
// type-check, interval folding, shadowing) over a rule set. A nil
// vocabulary means DefaultMetricVocabulary.
func LintRuleSet(name string, rs *RuleSet, vocab MetricVocabulary) []Diagnostic {
	return lint.AnalyzeRuleSet(name, rs.Rules(), vocab)
}

// LintListing parses an assembly listing and runs the SISR
// control-flow analysis: privileged opcodes, branch/call targets in
// segment, indirect branches, unreachable code.
func LintListing(file, src string) []Diagnostic {
	l, diags := goos.ParseListing(file, src)
	return append(diags, goos.AnalyzeListing(l)...)
}

// DefaultMetricVocabulary returns the well-known monitor metrics with
// their units and ranges.
func DefaultMetricVocabulary() MetricVocabulary { return lint.DefaultVocabulary() }

// Go! operating system model.
type (
	// GoSystem is a Go! zero-kernel image (SISR + ORB).
	GoSystem = goos.System
	// ORB is the privileged broker performing protected RPC.
	ORB = goos.ORB
)

// NewGoSystem boots a Go! image with the given GDT capacity.
func NewGoSystem(gdtSlots int) *GoSystem { return goos.NewSystem(gdtSlots) }

// Table1 reruns the paper's Table 1 RPC comparison.
func Table1() ([]goos.Table1Row, error) { return goos.Table1() }

// Query engine.
type (
	// Engine executes SQL over the storage substrate.
	Engine = query.Engine
	// QueryCatalog owns tables, indexes and statistics.
	QueryCatalog = query.Catalog
	// QueryResult is a statement outcome.
	QueryResult = query.Result
	// AdaptiveConfig tunes mid-query re-optimisation.
	AdaptiveConfig = query.AdaptiveConfig
	// ExecOptions tunes the morsel-driven parallel executor.
	ExecOptions = query.ExecOptions
	// ExecReport describes how a parallel execution ran.
	ExecReport = query.ExecReport
	// Tuple is a row of typed values.
	Tuple = storage.Tuple
	// Value is one typed field.
	Value = storage.Value
)

// NewEngine builds a SQL engine with the given buffer-pool frames.
func NewEngine(bufferFrames int) *Engine {
	return query.NewEngine(query.NewCatalog(bufferFrames), trace.New(), nil)
}

// Crash-safe storage: WAL + redo recovery + checksummed page file,
// with deterministic fault injection for recovery testing.
type (
	// DB is a crash-safe storage instance (WAL + checksummed page
	// file); reopening its disks after any crash rebuilds
	// byte-identical state.
	DB = storage.DB
	// DBOptions configures OpenDB.
	DBOptions = storage.DBOptions
	// DBStats is the durability layer's counter snapshot (WAL
	// barriers, checkpoints, recovery work, checksum failures and
	// quarantined pages).
	DBStats = storage.DBStats
	// RecoveryStats describes what a redo pass did.
	RecoveryStats = storage.RecoveryStats
	// DiskFile is the pluggable byte-addressed disk abstraction the
	// WAL and page file run over.
	DiskFile = storage.DiskFile
	// MemDisk is an in-memory DiskFile (tests, crash simulation).
	MemDisk = storage.MemDisk
	// FaultDisk wraps a DiskFile with seeded crash points, torn
	// writes and injected I/O errors.
	FaultDisk = fault.Disk
	// FaultRand is the deterministic generator used to derive fault
	// schedules from a seed.
	FaultRand = fault.Rand
	// Txn is one snapshot-isolation transaction: lock-free snapshot
	// reads, first-committer-wins writes, commit through the
	// group-commit WAL path.
	Txn = storage.Txn
	// TxnManager issues transactions over one DB; its timestamp clock
	// is the WAL LSN sequence.
	TxnManager = storage.TxnManager
	// TxnStats counts group-commit activity (groups, batched commits,
	// aborts).
	TxnStats = storage.TxnStats
	// DBSession is a client's transactional connection: BEGIN / COMMIT
	// / ROLLBACK as SQL, implicit per-statement transactions otherwise.
	DBSession = session.DBSession
	// SyncPolicy controls where the WAL places fsync barriers.
	SyncPolicy = storage.SyncPolicy
)

// WAL sync policies for DBOptions.Sync.
const (
	// SyncEveryRecord makes every WAL append its own fsync barrier.
	SyncEveryRecord = storage.SyncEveryRecord
	// SyncManual batches: commits place one barrier per group-commit
	// batch, checkpoints place their own.
	SyncManual = storage.SyncManual
)

// Storage-integrity sentinel errors, re-exported for errors.Is.
var (
	// ErrChecksum reports a page frame whose CRC does not match.
	ErrChecksum = storage.ErrChecksum
	// ErrQuarantined reports access to a page quarantined after a
	// checksum failure.
	ErrQuarantined = storage.ErrQuarantined
	// ErrDBFailed reports the sticky failure state after a WAL append
	// error; the DB refuses writes it could not make durable.
	ErrDBFailed = storage.ErrDBFailed
	// ErrDiskCrashed reports I/O against a FaultDisk past its crash
	// point.
	ErrDiskCrashed = fault.ErrCrashed
	// ErrFaultInjected reports a one-shot injected I/O error.
	ErrFaultInjected = fault.ErrInjected
	// ErrWriteConflict reports a first-committer-wins write-write
	// conflict; the losing transaction must roll back.
	ErrWriteConflict = storage.ErrWriteConflict
	// ErrTxnDone reports use of a committed or rolled-back transaction.
	ErrTxnDone = storage.ErrTxnDone
)

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk { return storage.NewMemDisk() }

// NewMemDiskFrom returns an in-memory disk seeded with a snapshot
// (crash simulation: pair it with another disk's Bytes()).
func NewMemDiskFrom(data []byte) *MemDisk { return storage.NewMemDiskFrom(data) }

// WrapFaulty wraps a disk with the deterministic fault injector.
func WrapFaulty(inner DiskFile) *FaultDisk { return fault.Wrap(inner) }

// NewFaultRand returns the seeded generator fault schedules derive
// from (splitmix64; identical seeds yield identical schedules).
func NewFaultRand(seed uint64) *FaultRand { return fault.NewRand(seed) }

// OpenDB opens (or recovers) a crash-safe DB over a WAL disk and a
// page-file disk.
func OpenDB(walDisk, dataDisk DiskFile, opts DBOptions) (*DB, error) {
	return storage.Open(walDisk, dataDisk, opts)
}

// NewDBSession opens a transactional session over an engine and the
// DB backing it (pass the same db given to NewDurableEngine). Each
// session is an independent transaction stream; any number can run
// concurrently, and their commits batch through the group-commit WAL
// path.
func NewDBSession(eng *Engine, db *DB) *DBSession {
	return session.NewDBSession(eng, db)
}

// NewDurableEngine builds a SQL engine whose catalog rides db's redo
// log: tables, rows and index definitions survive crashes, and
// NewDurableEngine over the reopened disks restores them. Quarantined
// pages are reported into the engine's trace log as corruption
// events.
func NewDurableEngine(db *DB) (*Engine, error) {
	cat, err := query.NewDurableCatalog(db)
	if err != nil {
		return nil, err
	}
	log := trace.New()
	corrupt := log.Span("storage.db")
	db.SetCorruptionHook(func(id storage.PageID, err error) {
		corrupt.Emit(0, trace.KindCorruption, "page %d quarantined: %v", id, err)
	})
	// Recovery ran before the hook existed; surface its quarantines too.
	for _, id := range db.Buffer().Quarantined() {
		corrupt.Emit(0, trace.KindCorruption, "page %d quarantined during recovery", id)
	}
	return query.NewEngine(cat, log, nil), nil
}

// Data components, devices, network, streams, applications.
type (
	// DataComponent is the Figure 2 structure: data + metadata +
	// rules + version list.
	DataComponent = datacomp.Component
	// Device models a sensor/PDA/laptop/server unit.
	Device = device.Device
	// Testbed is the Figure 3 sensor–Laptop–PDA system.
	Testbed = device.Testbed
	// Network is the discrete-event network simulator.
	Network = simnet.Network
	// Clock is the shared discrete-event clock.
	Clock = simnet.Clock
	// Streamer cuts sensor readings into safe-pointed XML chunks.
	Streamer = xmlstream.Streamer
	// PatiaSystem is the adaptive webserver deployment.
	PatiaSystem = patia.System
	// KendraConfig parameterises an adaptive audio session.
	KendraConfig = kendra.Config
	// TraceLog is the structured adaptation-event log.
	TraceLog = trace.Log
)

// NewTestbed builds the Figure 3 topology with a fixed RNG seed.
func NewTestbed(seed int64) *Testbed { return device.NewTestbed(seed) }

// NewClock returns a discrete-event clock at time zero.
func NewClock() *Clock { return simnet.NewClock() }

// NewTraceLog returns an empty adaptation-event log.
func NewTraceLog() *TraceLog { return trace.New() }

// Declarative whole-system assembly (internal/core) and the
// self-learning extension (internal/learn).

type (
	// System is the §3 architecture as one object: assembly + ADL
	// modes + gauges + rules + session + adaptivity managers.
	System = core.System
	// SystemConfig declares a System.
	SystemConfig = core.Config
	// SystemRule declares one switching rule and its action.
	SystemRule = core.RuleSpec
	// ThresholdTuner learns a switching rule's threshold from
	// adaptation outcomes (§6 extension).
	ThresholdTuner = learn.Tuner
	// TunerConfig calibrates a ThresholdTuner.
	TunerConfig = learn.Config
	// ResumableAgg is a checkpointable aggregation query that can
	// jump to another device's replica after a failure (§1).
	ResumableAgg = query.ResumableAgg
)

// Rule action kinds for SystemRule.
const (
	ActionSwitchMode = core.ActionSwitchMode
	ActionRebind     = core.ActionRebind
	ActionCustom     = core.ActionCustom
)

// NewSystem builds a declarative adaptive system.
func NewSystem(cfg SystemConfig) (*System, error) { return core.New(cfg) }

// NewThresholdTuner attaches a tuner to a threshold rule.
func NewThresholdTuner(rule *Rule, cfg TunerConfig) (*ThresholdTuner, error) {
	return learn.NewTuner(rule, cfg)
}

// NewResumableAgg starts a checkpointable aggregation over cat's
// table/column.
func NewResumableAgg(cat *QueryCatalog, table, col string) (*ResumableAgg, error) {
	return query.NewResumableAgg(cat, table, col, nil)
}

// Application runners.

type (
	// CrowdConfig parameterises a Patia flash-crowd run.
	CrowdConfig = patia.CrowdConfig
	// CrowdResult summarises one.
	CrowdResult = patia.CrowdResult
	// KendraResult summarises an audio session.
	KendraResult = kendra.Result
	// BandwidthPoint is one step of a bandwidth trace.
	BandwidthPoint = kendra.BandwidthPoint
)

// DefaultCrowdConfig returns the Table 2 flash-crowd schedule.
func DefaultCrowdConfig(adaptive bool) CrowdConfig { return patia.DefaultCrowdConfig(adaptive) }

// RunFlashCrowd executes the Patia flash-crowd experiment.
func RunFlashCrowd(cfg CrowdConfig) (*CrowdResult, error) { return patia.RunFlashCrowd(cfg) }

// DefaultKendraConfig returns a 30s audio session configuration.
func DefaultKendraConfig(adaptive bool) KendraConfig { return kendra.DefaultConfig(adaptive) }

// KendraStream runs one audio session against a bandwidth trace.
func KendraStream(cfg KendraConfig, bw []BandwidthPoint) (*KendraResult, error) {
	return kendra.Stream(cfg, bw)
}

// KendraDropTrace is the standard drop-and-recover bandwidth trace.
func KendraDropTrace() []BandwidthPoint { return kendra.DropTrace() }

// Experiments.

// ExperimentReport is one regenerated table/figure.
type ExperimentReport = experiments.Report

// RunExperiment regenerates a paper table/figure by id (table1, mem,
// figure1, figure5, figure6, scenario1..3, table2, joins, ripple,
// kendra, ablation-*).
func RunExperiment(id string) (*ExperimentReport, error) {
	r, ok := experiments.ByID(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return r.Run()
}

// ExperimentIDs lists the available experiment ids in paper order.
func ExperimentIDs() []string {
	var out []string
	for _, r := range experiments.All() {
		out = append(out, r.ID)
	}
	return out
}

// UnknownExperimentError names a bad experiment id.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "adm: unknown experiment " + e.ID
}
